//! Deterministic pseudo-random number generation.
//!
//! Simulation determinism is a core requirement of rocketbench: the paper's
//! central complaint is that benchmark results are fragile and hard to
//! reproduce, so the reproduction itself must be bit-stable. To avoid
//! depending on the stream stability of an external crate, the simulators
//! use this self-contained xoshiro256** implementation (public domain
//! algorithm by Blackman and Vigna) seeded through SplitMix64.

// The FNV-1a primitive moved to the shared `fnv` module (it now backs
// the hot-path hash maps as well as seed derivation); re-exported here
// because `rng::fnv1a` has been its public address since PR 1.
pub use crate::fnv::{fnv1a, FNV_OFFSET};

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// The same seed always produces the same stream on every platform.
/// Use [`Rng::fork`] to derive independent sub-streams for simulation
/// components so that adding draws in one component never perturbs
/// another (a classic source of accidental benchmark nondeterminism).
///
/// # Examples
///
/// ```
/// use rb_simcore::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut disk = a.fork("disk");
/// let mut cache = a.fork("cache");
/// assert_ne!(disk.next_u64(), cache.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator for a named component.
    ///
    /// The child stream is a pure function of the parent's *current* state
    /// and the label, and drawing from the child does not consume parent
    /// state, so component streams stay decoupled.
    pub fn fork(&self, label: &str) -> Rng {
        let h = fnv1a(FNV_OFFSET, label.as_bytes());
        Rng::new(h ^ self.s[0].rotate_left(17) ^ self.s[3])
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    /// A zero `bound` returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// An empty range (`hi <= lo`) returns `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a standard normal deviate (Box-Muller, polar form).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Returns an exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Use 1 - u to avoid ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Returns a log-normal deviate parameterized by the *median* and the
    /// shape `sigma` of the underlying normal.
    ///
    /// The median form is more intuitive for latency modelling than the
    /// usual `mu` parameterization: half of all draws fall below `median`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.normal()).exp()
    }

    /// Picks a uniformly random element of a slice, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_stream_is_stable() {
        // Regression anchor: if these change, every experiment changes.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let parent = Rng::new(99);
        let mut d1 = parent.fork("disk");
        let mut d2 = parent.fork("disk");
        let mut c = parent.fork("cache");
        assert_eq!(d1.next_u64(), d2.next_u64());
        // Distinct labels give distinct streams with overwhelming probability.
        assert_ne!(d1.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let v = r.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_handles_degenerate_inputs() {
        let mut r = Rng::new(1);
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(9, 3), 9);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Rng::new(5);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = Rng::new(6);
        let n = 50_000;
        let mean = 4.2;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = total / n as f64;
        assert!((got - mean).abs() < 0.1, "mean {got}");
    }

    #[test]
    fn lognormal_median_is_sane() {
        let mut r = Rng::new(8);
        let mut draws: Vec<f64> = (0..10_001).map(|_| r.lognormal(4096.0, 0.3)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[5000];
        assert!((median / 4096.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(10);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(10);
        let empty: [u32; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
