//! Deterministic discrete-event queue for virtual-time concurrency.
//!
//! Multi-threaded workloads (the paper's *scaling* dimension) are simulated
//! by interleaving per-thread operations in virtual time: each simulated
//! thread schedules its next operation's completion instant, and the engine
//! always dispatches the earliest one. Ties are broken by insertion
//! sequence so the schedule is a pure function of the inputs.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual instant, carrying a payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    at: Nanos,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered event queue over virtual time.
///
/// # Examples
///
/// ```
/// use rb_simcore::events::EventQueue;
/// use rb_simcore::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(5), "b");
/// q.schedule(Nanos::from_micros(1), "a");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), what), (1, "a"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    ///
    /// Events at equal instants come out in the order they were scheduled.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Returns the instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_micros(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(7), ())));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaving_is_deterministic() {
        // Two "threads" alternately scheduling; the merged order must be a
        // pure function of the schedule.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Nanos::from_nanos(0), (0u8, 0u32));
            q.schedule(Nanos::from_nanos(0), (1u8, 0u32));
            while let Some((t, (tid, n))) = q.pop() {
                out.push((t.as_nanos(), tid, n));
                if n < 50 {
                    // Thread 0 is faster than thread 1.
                    let step = if tid == 0 { 3 } else { 5 };
                    q.schedule(t + Nanos::from_nanos(step), (tid, n + 1));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
