//! Deterministic discrete-event queue for virtual-time concurrency.
//!
//! Multi-threaded workloads (the paper's *scaling* dimension) are simulated
//! by interleaving per-thread operations in virtual time: each simulated
//! thread schedules its next operation's completion instant, and the engine
//! always dispatches the earliest one. Ties are broken by insertion
//! sequence so the schedule is a pure function of the inputs.

use crate::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual instant, carrying a payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    at: Nanos,
    seq: u64,
    payload: T,
}

/// A min-ordered event queue over virtual time.
///
/// Implemented as an arena-backed 4-ary min-heap over a flat `Vec`:
/// sift loops walk index arithmetic in one contiguous allocation, with
/// a branching factor chosen so a heap of hundreds of in-flight events
/// stays within a couple of cache lines per level. Ordering is by the
/// `(at, seq)` key — `seq` increments per [`EventQueue::schedule`] call
/// — so equal-instant events pop in exact FIFO order, and the pop
/// sequence is a pure function of the schedule no matter what internal
/// shape the heap takes.
///
/// The queue is built to be reused: [`EventQueue::clear`] resets it to
/// the freshly-constructed state (including the FIFO sequence counter)
/// while keeping the arena allocation, and [`EventQueue::reserve`]
/// pre-sizes it, so run-per-cell drivers stop paying an allocation
/// ramp-up on every run.
///
/// # Examples
///
/// ```
/// use rb_simcore::events::EventQueue;
/// use rb_simcore::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(5), "b");
/// q.schedule(Nanos::from_micros(1), "a");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), what), (1, "a"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Flat 4-ary min-heap: children of `i` are `4i+1 ..= 4i+4`.
    arena: Vec<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            arena: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            arena: Vec::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.arena.reserve(additional);
    }

    /// Empties the queue and resets the FIFO sequence counter, keeping
    /// the arena allocation. A cleared queue behaves identically to a
    /// fresh one — same tie-break numbering — so reuse across runs
    /// cannot perturb a deterministic schedule.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.seq = 0;
    }

    #[inline]
    fn key(&self, i: usize) -> (Nanos, u64) {
        let s = &self.arena[i];
        (s.at, s.seq)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) >> 2;
            if self.key(i) < self.key(parent) {
                self.arena.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.arena.len();
        loop {
            let first = (i << 2) + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let mut min_key = self.key(first);
            let last = (first + 4).min(n);
            for c in first + 1..last {
                let k = self.key(c);
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key < self.key(i) {
                self.arena.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.arena.push(Scheduled { at, seq, payload });
        self.sift_up(self.arena.len() - 1);
    }

    /// Removes and returns the earliest event, if any.
    ///
    /// Events at equal instants come out in the order they were scheduled.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        let last = self.arena.pop()?;
        if self.arena.is_empty() {
            return Some((last.at, last.payload));
        }
        let top = std::mem::replace(&mut self.arena[0], last);
        self.sift_down(0);
        Some((top.at, top.payload))
    }

    /// Returns the instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.arena.first().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

/// Per-core next-free tokens: the CPU side of a contention model.
///
/// `claim` gives the caller the earliest-free core (lowest index on
/// ties), occupies it for `work`, and returns the completion instant.
/// Shared by the multi-process workload scheduler and anything else
/// that needs bounded-parallelism tokens over virtual time.
///
/// The token set is a min-heap keyed `(free_at, index)`, so a claim is
/// O(log cores) instead of a linear scan, and the heap ordering itself
/// enforces the lowest-index tie-break the linear scan used to provide
/// (the popped minimum is the smallest `(free_at, index)` pair — the
/// first minimum a front-to-back scan would find).
#[derive(Debug, Clone)]
pub struct CoreSet {
    free: BinaryHeap<Reverse<(Nanos, u32)>>,
}

impl CoreSet {
    /// A set of `cores` idle cores (at least one).
    pub fn new(cores: u32) -> Self {
        CoreSet {
            free: (0..cores.max(1))
                .map(|i| Reverse((Nanos::ZERO, i)))
                .collect(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.free.len()
    }

    /// Claims the earliest-free core at `now` for `work`; returns when
    /// the work completes. Ties break toward the lowest core index, so
    /// the claim order is deterministic.
    pub fn claim(&mut self, now: Nanos, work: Nanos) -> Nanos {
        self.claim_indexed(now, work).1
    }

    /// Like [`CoreSet::claim`], but also reports *which* core served
    /// the claim, so callers can attribute busy time per core
    /// (utilization accounting, trace track ids).
    pub fn claim_indexed(&mut self, now: Nanos, work: Nanos) -> (u32, Nanos) {
        // peek_mut re-sifts once on drop: one O(log cores) pass per
        // claim instead of a pop + push pair.
        let mut top = self.free.peek_mut().expect("at least one core");
        let Reverse((free_at, core)) = *top;
        let start = free_at.max(now);
        let done = start + work;
        *top = Reverse((done, core));
        (core, done)
    }
}

/// A shared device's next-free token: the media side of a contention
/// model. Every queued request serializes behind the previous ones,
/// which is what makes device-bound workloads refuse to scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceQueue {
    free: Nanos,
    waited: Nanos,
    busy: Nanos,
}

impl DeviceQueue {
    /// An idle device.
    pub fn new() -> Self {
        DeviceQueue {
            free: Nanos::ZERO,
            waited: Nanos::ZERO,
            busy: Nanos::ZERO,
        }
    }

    /// An idle device that becomes available at `at` (for schedulers
    /// running in absolute time).
    pub fn idle_from(at: Nanos) -> Self {
        DeviceQueue {
            free: at,
            waited: Nanos::ZERO,
            busy: Nanos::ZERO,
        }
    }

    /// The instant the device next falls idle.
    pub fn next_free(&self) -> Nanos {
        self.free
    }

    /// Total time requests spent queued behind the device (the gap
    /// between becoming ready and service start, summed over every
    /// `serve` call).
    pub fn waited(&self) -> Nanos {
        self.waited
    }

    /// Total device service time handed out (summed `work` over every
    /// `serve` call).
    pub fn busy(&self) -> Nanos {
        self.busy
    }

    /// Serves `work` device time for a request that becomes ready at
    /// `ready`; returns the completion instant (start = max(ready,
    /// next_free)).
    pub fn serve(&mut self, ready: Nanos, work: Nanos) -> Nanos {
        let start = self.free.max(ready);
        self.waited += start - ready;
        self.busy += work;
        self.free = start + work;
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_set_claims_earliest_and_lowest() {
        let mut cores = CoreSet::new(2);
        // Two claims at t=0 land on distinct cores.
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(10)).as_micros(),
            10
        );
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(4)).as_micros(),
            4
        );
        // The next claim takes the earliest-free core (the second).
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(1)).as_micros(),
            5
        );
        // Both free at 10 vs 6: the second is earlier again.
        assert_eq!(
            cores.claim(Nanos::from_micros(6), Nanos::ZERO).as_micros(),
            6
        );
    }

    #[test]
    fn zero_cores_coerced_to_one() {
        let mut cores = CoreSet::new(0);
        assert_eq!(cores.cores(), 1);
        let a = cores.claim(Nanos::ZERO, Nanos::from_micros(5));
        let b = cores.claim(Nanos::ZERO, Nanos::from_micros(5));
        assert!(b > a, "one core must serialize");
    }

    #[test]
    fn claim_indexed_reports_cores() {
        let mut cores = CoreSet::new(2);
        let (a, _) = cores.claim_indexed(Nanos::ZERO, Nanos::from_micros(10));
        let (b, _) = cores.claim_indexed(Nanos::ZERO, Nanos::from_micros(4));
        assert_ne!(a, b, "concurrent claims land on distinct cores");
        // Core `b` frees first, so the next claim lands there again.
        let (c, done) = cores.claim_indexed(Nanos::ZERO, Nanos::from_micros(1));
        assert_eq!(c, b);
        assert_eq!(done.as_micros(), 5);
    }

    #[test]
    fn device_queue_accounts_wait_and_busy() {
        let mut dev = DeviceQueue::new();
        dev.serve(Nanos::ZERO, Nanos::from_millis(5));
        // Ready at 1ms, served at 5ms: 4ms queued.
        dev.serve(Nanos::from_millis(1), Nanos::from_millis(5));
        // Ready after idle: no queueing.
        dev.serve(Nanos::from_millis(20), Nanos::from_millis(5));
        assert_eq!(dev.waited().as_millis(), 4);
        assert_eq!(dev.busy().as_millis(), 15);
    }

    #[test]
    fn device_queue_serializes() {
        let mut dev = DeviceQueue::new();
        let a = dev.serve(Nanos::ZERO, Nanos::from_millis(5));
        assert_eq!(a.as_millis(), 5);
        // Ready at 1ms but the device is busy until 5ms.
        let b = dev.serve(Nanos::from_millis(1), Nanos::from_millis(5));
        assert_eq!(b.as_millis(), 10);
        // Ready after the device idles: no queueing.
        let c = dev.serve(Nanos::from_millis(20), Nanos::from_millis(5));
        assert_eq!(c.as_millis(), 25);
        // And a device created idle-from a later instant starts there.
        assert_eq!(
            DeviceQueue::idle_from(Nanos::from_millis(3))
                .next_free()
                .as_millis(),
            3
        );
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_micros(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(7), ())));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaving_is_deterministic() {
        // Two "threads" alternately scheduling; the merged order must be a
        // pure function of the schedule.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Nanos::from_nanos(0), (0u8, 0u32));
            q.schedule(Nanos::from_nanos(0), (1u8, 0u32));
            while let Some((t, (tid, n))) = q.pop() {
                out.push((t.as_nanos(), tid, n));
                if n < 50 {
                    // Thread 0 is faster than thread 1.
                    let step = if tid == 0 { 3 } else { 5 };
                    q.schedule(t + Nanos::from_nanos(step), (tid, n + 1));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
