//! Deterministic discrete-event queue for virtual-time concurrency.
//!
//! Multi-threaded workloads (the paper's *scaling* dimension) are simulated
//! by interleaving per-thread operations in virtual time: each simulated
//! thread schedules its next operation's completion instant, and the engine
//! always dispatches the earliest one. Ties are broken by insertion
//! sequence so the schedule is a pure function of the inputs.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual instant, carrying a payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    at: Nanos,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered event queue over virtual time.
///
/// # Examples
///
/// ```
/// use rb_simcore::events::EventQueue;
/// use rb_simcore::time::Nanos;
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(5), "b");
/// q.schedule(Nanos::from_micros(1), "a");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), what), (1, "a"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    ///
    /// Events at equal instants come out in the order they were scheduled.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Returns the instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Per-core next-free tokens: the CPU side of a contention model.
///
/// `claim` gives the caller the earliest-free core (lowest index on
/// ties), occupies it for `work`, and returns the completion instant.
/// Shared by the multi-process workload scheduler and anything else
/// that needs bounded-parallelism tokens over virtual time.
#[derive(Debug, Clone)]
pub struct CoreSet {
    free: Vec<Nanos>,
}

impl CoreSet {
    /// A set of `cores` idle cores (at least one).
    pub fn new(cores: u32) -> Self {
        CoreSet {
            free: vec![Nanos::ZERO; cores.max(1) as usize],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.free.len()
    }

    /// Claims the earliest-free core at `now` for `work`; returns when
    /// the work completes. Ties break toward the lowest core index, so
    /// the claim order is deterministic.
    pub fn claim(&mut self, now: Nanos, work: Nanos) -> Nanos {
        let core = (0..self.free.len())
            .min_by_key(|&i| self.free[i])
            .expect("at least one core");
        let start = self.free[core].max(now);
        let done = start + work;
        self.free[core] = done;
        done
    }
}

/// A shared device's next-free token: the media side of a contention
/// model. Every queued request serializes behind the previous ones,
/// which is what makes device-bound workloads refuse to scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceQueue {
    free: Nanos,
}

impl DeviceQueue {
    /// An idle device.
    pub fn new() -> Self {
        DeviceQueue { free: Nanos::ZERO }
    }

    /// An idle device that becomes available at `at` (for schedulers
    /// running in absolute time).
    pub fn idle_from(at: Nanos) -> Self {
        DeviceQueue { free: at }
    }

    /// The instant the device next falls idle.
    pub fn next_free(&self) -> Nanos {
        self.free
    }

    /// Serves `work` device time for a request that becomes ready at
    /// `ready`; returns the completion instant (start = max(ready,
    /// next_free)).
    pub fn serve(&mut self, ready: Nanos, work: Nanos) -> Nanos {
        let start = self.free.max(ready);
        self.free = start + work;
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_set_claims_earliest_and_lowest() {
        let mut cores = CoreSet::new(2);
        // Two claims at t=0 land on distinct cores.
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(10)).as_micros(),
            10
        );
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(4)).as_micros(),
            4
        );
        // The next claim takes the earliest-free core (the second).
        assert_eq!(
            cores.claim(Nanos::ZERO, Nanos::from_micros(1)).as_micros(),
            5
        );
        // Both free at 10 vs 6: the second is earlier again.
        assert_eq!(
            cores.claim(Nanos::from_micros(6), Nanos::ZERO).as_micros(),
            6
        );
    }

    #[test]
    fn zero_cores_coerced_to_one() {
        let mut cores = CoreSet::new(0);
        assert_eq!(cores.cores(), 1);
        let a = cores.claim(Nanos::ZERO, Nanos::from_micros(5));
        let b = cores.claim(Nanos::ZERO, Nanos::from_micros(5));
        assert!(b > a, "one core must serialize");
    }

    #[test]
    fn device_queue_serializes() {
        let mut dev = DeviceQueue::new();
        let a = dev.serve(Nanos::ZERO, Nanos::from_millis(5));
        assert_eq!(a.as_millis(), 5);
        // Ready at 1ms but the device is busy until 5ms.
        let b = dev.serve(Nanos::from_millis(1), Nanos::from_millis(5));
        assert_eq!(b.as_millis(), 10);
        // Ready after the device idles: no queueing.
        let c = dev.serve(Nanos::from_millis(20), Nanos::from_millis(5));
        assert_eq!(c.as_millis(), 25);
        // And a device created idle-from a later instant starts there.
        assert_eq!(
            DeviceQueue::idle_from(Nanos::from_millis(3))
                .next_free()
                .as_millis(),
            3
        );
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_micros(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(7), ())));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaving_is_deterministic() {
        // Two "threads" alternately scheduling; the merged order must be a
        // pure function of the schedule.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(Nanos::from_nanos(0), (0u8, 0u32));
            q.schedule(Nanos::from_nanos(0), (1u8, 0u32));
            while let Some((t, (tid, n))) = q.pop() {
                out.push((t.as_nanos(), tid, n));
                if n < 50 {
                    // Thread 0 is faster than thread 1.
                    let step = if tid == 0 { 3 } else { 5 };
                    q.schedule(t + Nanos::from_nanos(step), (tid, n + 1));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
