//! # rb-simcore — deterministic simulation foundation
//!
//! Shared substrate for the rocketbench simulation stack: nanosecond
//! virtual time, a self-contained deterministic PRNG, sampling
//! distributions, a discrete-event queue, byte units and common errors.
//!
//! Everything above this crate (disk, cache, file system, harness) is a
//! pure function of its configuration and a seed, which is what lets the
//! paper's figures regenerate bit-identically — and lets the harness study
//! *controlled* variance, the paper's central theme.
//!
//! ## Example
//!
//! ```
//! use rb_simcore::prelude::*;
//!
//! let mut clock = VirtualClock::new();
//! let mut rng = Rng::new(0xB0B);
//! let service = Dist::LogNormal { median: 4096.0, sigma: 0.25 };
//! clock.advance(Nanos::from_nanos(service.sample(&mut rng) as u64));
//! assert!(clock.now() > Nanos::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod events;
pub mod fnv;
pub mod inline;
pub mod rng;
pub mod time;
pub mod units;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::dist::{Dist, Zipf};
    pub use crate::error::{SimError, SimResult};
    pub use crate::events::EventQueue;
    pub use crate::fnv::{FnvHashMap, FnvHashSet};
    pub use crate::rng::Rng;
    pub use crate::time::{Nanos, VirtualClock};
    pub use crate::units::{page_span, BlockNo, Bytes, PageNo, PAGE_SIZE};
}
