//! Sampling distributions for workload and device modelling.
//!
//! Workload generators need access-pattern distributions (uniform, Zipf for
//! popularity skew, Pareto for file sizes) and device models need latency
//! distributions (log-normal service times, exponential interarrivals).
//! All sampling is driven by the deterministic [`Rng`].

use crate::rng::Rng;

/// A sampling distribution over non-negative reals.
///
/// The enum form keeps configurations plain data: a workload file can name
/// a distribution without trait objects, and two configurations compare
/// equal structurally.
///
/// # Examples
///
/// ```
/// use rb_simcore::dist::Dist;
/// use rb_simcore::rng::Rng;
///
/// let mut rng = Rng::new(1);
/// let d = Dist::Uniform { lo: 10.0, hi: 20.0 };
/// let x = d.sample(&mut rng);
/// assert!((10.0..20.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterized by median and shape.
    LogNormal {
        /// Median of the distribution (50th percentile).
        median: f64,
        /// Shape (sigma of the underlying normal).
        sigma: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with tail index `alpha`.
    ///
    /// Classic heavy-tailed model for file sizes.
    Pareto {
        /// Smallest value.
        lo: f64,
        /// Largest value.
        hi: f64,
        /// Tail index; smaller means heavier tail.
        alpha: f64,
    },
    /// Normal with mean and standard deviation, truncated at zero.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
}

impl Dist {
    /// Draws one sample.
    ///
    /// All variants return finite, non-negative values; negative normal
    /// draws are clamped to zero (latencies and sizes cannot be negative).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi).max(0.0),
            Dist::Exponential { mean } => rng.exponential(mean.max(0.0)),
            Dist::LogNormal { median, sigma } => rng.lognormal(median.max(0.0), sigma),
            Dist::Pareto { lo, hi, alpha } => {
                let (l, h) = (lo.max(1e-9), hi.max(lo.max(1e-9)));
                if (h - l).abs() < f64::EPSILON {
                    return l;
                }
                // Inverse-CDF sampling of the bounded Pareto.
                let a = alpha.max(1e-9);
                let u = rng.next_f64();
                let la = l.powf(a);
                let ha = h.powf(a);
                (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
            }
            Dist::Normal { mean, sd } => (mean + sd * rng.normal()).max(0.0),
        }
    }

    /// Returns the distribution's theoretical mean where it has a simple
    /// closed form, used by tests and by the harness's run-length planner.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { mean } => mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Normal { mean, .. } => mean,
            Dist::Pareto { lo, hi, alpha } => {
                // Mean of the bounded Pareto.
                let (l, h, a) = (lo, hi, alpha);
                if (a - 1.0).abs() < 1e-9 {
                    let la = l.powf(a);
                    let ha = h.powf(a);
                    la / (1.0 - la / ha) * (h.ln() - l.ln())
                } else {
                    let la = l.powf(a);
                    let ha = h.powf(a);
                    (la / (1.0 - la / ha))
                        * (a / (a - 1.0))
                        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
                }
            }
        }
    }
}

/// Zipf-distributed index sampler over `{0, 1, ..., n-1}`.
///
/// Rank 0 is the most popular item. Used for skewed file- and
/// block-popularity models (web server and file server personalities).
/// Sampling is by inverted-CDF binary search over a precomputed table,
/// which is exact and fast for the table sizes workloads use (≤ ~1e6).
///
/// # Examples
///
/// ```
/// use rb_simcore::dist::Zipf;
/// use rb_simcore::rng::Rng;
///
/// let mut rng = Rng::new(2);
/// let z = Zipf::new(1000, 0.99);
/// let i = z.sample(&mut rng);
/// assert!(i < 1000);
/// ```
#[derive(Debug, Clone)]
pub enum Zipf {
    /// `theta = 0`: every item equally likely. Construction is O(1) —
    /// important because engines rebuild the sampler whenever a file
    /// set grows or shrinks — and sampling computes the same CDF values
    /// the table would hold (`(i+1)/n`) on the fly, so the drawn
    /// indices are bit-identical to the table-backed sampler's.
    Uniform {
        /// Number of items.
        n: usize,
    },
    /// `theta > 0`: inverted-CDF table over the skewed mass function.
    Skewed {
        /// Cumulative distribution, `cdf[i] = P(index <= i)`.
        cdf: Vec<f64>,
    },
}

impl Zipf {
    /// Builds a sampler for `n` items with exponent `theta`.
    ///
    /// `theta = 0` degenerates to uniform; `theta ≈ 1` is the classic
    /// web-popularity skew. `n = 0` is treated as `n = 1`.
    pub fn new(n: usize, theta: f64) -> Self {
        let n = n.max(1);
        if theta == 0.0 {
            // With theta = 0 every weight is exactly 1.0, the partial
            // sums are exact integers, and the normalized table would be
            // exactly (i+1)/n — reproduced in `sample` without a table.
            return Zipf::Uniform { n };
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf::Skewed { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        match self {
            Zipf::Uniform { n } => *n,
            Zipf::Skewed { cdf } => cdf.len(),
        }
    }

    /// Returns true if the sampler has exactly one item.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one index in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self {
            Zipf::Uniform { n } => {
                // Binary search for the first index whose CDF value
                // exceeds `u`, computing cdf[i] = (i+1)/n on demand.
                // The predicate is monotone (fixed-divisor division is
                // non-decreasing under rounding), so this lands on the
                // same boundary `partition_point` over the table would.
                let nf = *n as f64;
                let (mut lo, mut hi) = (0usize, *n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if (mid + 1) as f64 / nf <= u {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo.min(n - 1)
            }
            // partition_point returns the first index with cdf > u.
            Zipf::Skewed { cdf } => cdf.partition_point(|&c| c <= u).min(cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(3.5);
        let mut rng = Rng::new(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = Dist::Uniform { lo: 2.0, hi: 8.0 };
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..8.0).contains(&x));
        }
        assert!((sample_mean(&d, 2, 50_000) - 5.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { mean: 7.0 };
        assert!((sample_mean(&d, 3, 100_000) - 7.0).abs() < 0.15);
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = Dist::LogNormal {
            median: 100.0,
            sigma: 0.5,
        };
        let want = d.mean();
        let got = sample_mean(&d, 4, 200_000);
        assert!((got / want - 1.0).abs() < 0.03, "got {got}, want {want}");
    }

    #[test]
    fn pareto_stays_bounded() {
        let d = Dist::Pareto {
            lo: 1.0,
            hi: 1000.0,
            alpha: 1.2,
        };
        let mut rng = Rng::new(5);
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0 + 1e-6).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn pareto_mean_matches_closed_form() {
        let d = Dist::Pareto {
            lo: 4.0,
            hi: 4096.0,
            alpha: 1.3,
        };
        let want = d.mean();
        let got = sample_mean(&d, 6, 300_000);
        assert!((got / want - 1.0).abs() < 0.05, "got {got}, want {want}");
    }

    #[test]
    fn normal_clamps_at_zero() {
        let d = Dist::Normal {
            mean: 0.5,
            sd: 10.0,
        };
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(8);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of a theta=1 Zipf over 100 items carries ~1/H(100) ≈ 19 %.
        assert!((counts[0] as f64 / 100_000.0 - 0.192).abs() < 0.02);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(9);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((4_000..6_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_degenerate_sizes() {
        let z = Zipf::new(0, 1.0);
        assert_eq!(z.len(), 1);
        let mut rng = Rng::new(10);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
