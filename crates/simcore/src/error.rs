//! Error types shared across the simulation stack.

use core::fmt;

/// Errors surfaced by the simulated storage stack.
///
/// The variants mirror the POSIX errors a real file system API would
/// return, so harness code paths are identical for simulated and real
/// targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The named file or directory does not exist.
    NotFound(String),
    /// The path already exists.
    AlreadyExists(String),
    /// An I/O request fell outside the device or file bounds.
    OutOfBounds {
        /// Requested offset (bytes or blocks, per context).
        offset: u64,
        /// Size of the addressable object.
        size: u64,
    },
    /// The device or file system ran out of space.
    NoSpace,
    /// The file system ran out of inodes.
    NoInodes,
    /// The operation is invalid for the object (e.g. reading a directory).
    InvalidOperation(String),
    /// A directory was expected to be empty but is not.
    NotEmpty(String),
    /// A configuration parameter is invalid.
    BadConfig(String),
    /// A device-level I/O error (injected or mechanical) at a block.
    Io {
        /// Device block the failed request started at.
        block: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotFound(p) => write!(f, "not found: {p}"),
            SimError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            SimError::OutOfBounds { offset, size } => {
                write!(f, "out of bounds: offset {offset} beyond size {size}")
            }
            SimError::NoSpace => write!(f, "no space left on device"),
            SimError::NoInodes => write!(f, "no inodes left on device"),
            SimError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            SimError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            SimError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            SimError::Io { block } => write!(f, "i/o error at block {block}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulation operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            SimError::NotFound("/a/b".into()).to_string(),
            "not found: /a/b"
        );
        assert_eq!(
            SimError::OutOfBounds {
                offset: 10,
                size: 4
            }
            .to_string(),
            "out of bounds: offset 10 beyond size 4"
        );
        assert_eq!(SimError::NoSpace.to_string(), "no space left on device");
        assert_eq!(
            SimError::Io { block: 99 }.to_string(),
            "i/o error at block 99"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::NoInodes);
    }
}
