//! Byte-quantity units and block/page address helpers.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A byte quantity (size or offset).
///
/// # Examples
///
/// ```
/// use rb_simcore::units::Bytes;
///
/// let file = Bytes::mib(410);
/// assert_eq!(file.as_u64(), 410 * 1024 * 1024);
/// assert_eq!(file.div_ceil(Bytes::kib(4)), 104_960);
/// assert_eq!(format!("{file}"), "410.0MiB");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity from raw bytes.
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Creates a quantity from KiB.
    pub const fn kib(k: u64) -> Self {
        Bytes(k.saturating_mul(1024))
    }

    /// Creates a quantity from MiB.
    pub const fn mib(m: u64) -> Self {
        Bytes(m.saturating_mul(1024 * 1024))
    }

    /// Creates a quantity from GiB.
    pub const fn gib(g: u64) -> Self {
        Bytes(g.saturating_mul(1024 * 1024 * 1024))
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the quantity in whole KiB, truncating.
    pub const fn as_kib(self) -> u64 {
        self.0 / 1024
    }

    /// Returns the quantity in whole MiB, truncating.
    pub const fn as_mib(self) -> u64 {
        self.0 / (1024 * 1024)
    }

    /// Returns the quantity in fractional MiB.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns true if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ceiling division by a unit size, e.g. bytes to pages.
    ///
    /// A zero `unit` returns 0 to avoid a panic path; callers validate
    /// configuration separately.
    pub const fn div_ceil(self, unit: Bytes) -> u64 {
        if unit.0 == 0 {
            0
        } else {
            self.0.div_ceil(unit.0)
        }
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two quantities.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// Returns the larger of two quantities.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs.max(1))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({})", self.0)
    }
}

impl fmt::Display for Bytes {
    /// Formats with an automatically chosen binary unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        let b = self.0;
        if b < KIB {
            write!(f, "{b}B")
        } else if b < MIB {
            write!(f, "{:.1}KiB", b as f64 / KIB as f64)
        } else if b < GIB {
            write!(f, "{:.1}MiB", b as f64 / MIB as f64)
        } else {
            write!(f, "{:.1}GiB", b as f64 / GIB as f64)
        }
    }
}

/// Logical block address on a simulated device (in device blocks).
pub type BlockNo = u64;

/// Page index within a cached file (in page-size units).
pub type PageNo = u64;

/// The ubiquitous 4 KiB page size used throughout the stack.
pub const PAGE_SIZE: Bytes = Bytes::kib(4);

/// Splits a byte range `[offset, offset + len)` into the pages it touches.
///
/// Returns the inclusive first and exclusive last page index for
/// `page_size`-sized pages. An empty range yields an empty page range.
///
/// # Examples
///
/// ```
/// use rb_simcore::units::{page_span, Bytes};
///
/// // 8 KiB read at offset 6 KiB touches pages 1, 2 and 3.
/// let (first, last) = page_span(Bytes::kib(6), Bytes::kib(8), Bytes::kib(4));
/// assert_eq!((first, last), (1, 4));
/// ```
pub fn page_span(offset: Bytes, len: Bytes, page_size: Bytes) -> (PageNo, PageNo) {
    if len.is_zero() || page_size.is_zero() {
        let p = if page_size.is_zero() {
            0
        } else {
            offset.as_u64() / page_size.as_u64()
        };
        return (p, p);
    }
    let first = offset.as_u64() / page_size.as_u64();
    let last = (offset.as_u64() + len.as_u64()).div_ceil(page_size.as_u64());
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Bytes::kib(1).as_u64(), 1024);
        assert_eq!(Bytes::mib(1).as_kib(), 1024);
        assert_eq!(Bytes::gib(1).as_mib(), 1024);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Bytes::new(1).div_ceil(PAGE_SIZE), 1);
        assert_eq!(Bytes::kib(4).div_ceil(PAGE_SIZE), 1);
        assert_eq!(Bytes::new(4097).div_ceil(PAGE_SIZE), 2);
        assert_eq!(Bytes::ZERO.div_ceil(PAGE_SIZE), 0);
        assert_eq!(Bytes::kib(4).div_ceil(Bytes::ZERO), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Bytes::new(512)), "512B");
        assert_eq!(format!("{}", Bytes::kib(64)), "64.0KiB");
        assert_eq!(format!("{}", Bytes::mib(410)), "410.0MiB");
        assert_eq!(format!("{}", Bytes::gib(25)), "25.0GiB");
    }

    #[test]
    fn page_span_cases() {
        let p = Bytes::kib(4);
        // Aligned single page.
        assert_eq!(page_span(Bytes::ZERO, p, p), (0, 1));
        // Aligned two pages (the default 8 KiB I/O size).
        assert_eq!(page_span(Bytes::ZERO, Bytes::kib(8), p), (0, 2));
        // Unaligned spans three pages.
        assert_eq!(page_span(Bytes::kib(6), Bytes::kib(8), p), (1, 4));
        // Empty length is empty.
        let (a, b) = page_span(Bytes::kib(9), Bytes::ZERO, p);
        assert_eq!(a, b);
        // Sub-page read.
        assert_eq!(page_span(Bytes::new(100), Bytes::new(10), p), (0, 1));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Bytes::ZERO - Bytes::kib(1), Bytes::ZERO);
        assert_eq!(Bytes::new(u64::MAX) + Bytes::kib(1), Bytes::new(u64::MAX));
        assert_eq!(Bytes::kib(8) / 0, Bytes::kib(8));
    }
}
