//! Shared FNV-1a hashing: the zero-dependency hasher behind seed
//! derivation *and* the hot-path hash maps.
//!
//! The default `std` hash maps use SipHash-1-3, a keyed hash built to
//! resist collision flooding from untrusted input. Every map in the
//! simulation hot path — cache residency, inode tables, directory
//! entries, replay happens-before indices — is keyed by values the
//! simulator itself generates, so that defence buys nothing and costs a
//! measurable fraction of each simulated operation. [`FnvHashMap`] and
//! [`FnvHashSet`] swap in 64-bit FNV-1a — no per-map key material,
//! and — like everything in this crate — platform-independent and
//! deterministic. Byte slices absorb a multiply-xor per byte; integer
//! keys absorb one per 64-bit word (see [`FnvHasher::write_u64`]),
//! since a page-residency probe that burns sixteen dependent
//! multiplies on a 16-byte key is itself the hot path.
//!
//! The same primitive ([`fnv1a`], re-exported from
//! [`rng`](crate::rng) for compatibility) has derived campaign cell
//! seeds and RNG fork streams since PR 1; this module promotes it to a
//! shared home. Its constants must never change, or every recorded
//! experiment seed shifts.
//!
//! # Examples
//!
//! ```
//! use rb_simcore::fnv::FnvHashMap;
//!
//! let mut m: FnvHashMap<u64, &str> = FnvHashMap::default();
//! m.insert(2, "root inode");
//! assert_eq!(m.get(&2), Some(&"root inode"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit FNV-1a offset basis: the canonical initial value for
/// [`fnv1a`].
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x100_0000_01B3;

/// Incremental 64-bit FNV-1a over `bytes`, starting from `init`
/// (pass [`FNV_OFFSET`], or a previous return value to chain inputs).
///
/// This is the stable, platform-independent hash behind
/// [`Rng::fork`](crate::rng::Rng::fork) label derivation and campaign
/// per-cell seed derivation.
pub fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`Hasher`] running 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a(self.0, bytes);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    // Integer keys are absorbed word-at-a-time: one xor-multiply per
    // value instead of one per byte. A residency probe keyed by a
    // 16-byte `PageKey` costs 2 dependent multiplies instead of 16,
    // which is most of a cache-hit read's map time. This diverges from
    // byte-wise FNV-1a — that is fine for in-memory bucket placement
    // (the only consumer of `FnvHasher`), and anything persisted
    // (seeds, store digests) goes through the byte-exact [`fnv1a`]
    // free function, which must never change.
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` producing [`FnvHasher`]s (no per-map key material).
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` hashed with FNV-1a. Use on hot paths keyed by
/// simulator-generated values; construct with `FnvHashMap::default()`.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` hashed with FNV-1a.
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn hasher_matches_free_function_on_bytes() {
        let mut h = FnvHasher::default();
        h.write(b"rocketbench");
        assert_eq!(h.finish(), fnv1a(FNV_OFFSET, b"rocketbench"));
    }

    #[test]
    fn hasher_integer_writes_are_word_at_a_time() {
        // One xor-multiply absorbs the whole word; narrower integer
        // writes widen to u64 so equal values hash equal regardless of
        // the declared width.
        let mut a = FnvHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            a.finish(),
            (FNV_OFFSET ^ 0x0102_0304_0506_0708).wrapping_mul(FNV_PRIME)
        );
        let mut b = FnvHasher::default();
        b.write_u32(0x0506_0708);
        let mut c = FnvHasher::default();
        c.write_u64(0x0506_0708);
        assert_eq!(b.finish(), c.finish());
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FnvHashMap<String, u32> = FnvHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        for i in 0..1000 {
            s.insert(i * 7919);
        }
        assert_eq!(s.len(), 1000);
    }
}
