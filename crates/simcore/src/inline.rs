//! A small vector with inline storage for allocation-free hot paths.
//!
//! Simulation hot loops produce many short, short-lived sequences —
//! metadata block lists, resolved inode chains — whose typical length
//! is a handful of elements. [`InlineVec`] keeps the first `N` elements
//! in the value itself and only touches the heap when a sequence
//! outgrows that, so the common case costs zero allocations while the
//! rare deep case stays correct.

/// A `Vec`-like container whose first `N` elements live inline.
///
/// Requires `T: Copy + Default` so the inline buffer can be plainly
/// initialised without unsafe code. Once the inline buffer fills, the
/// contents spill to a heap `Vec` and stay there.
///
/// # Examples
///
/// ```
/// use rb_simcore::inline::InlineVec;
///
/// let mut v: InlineVec<u64, 4> = InlineVec::new();
/// for i in 0..6 {
///     v.push(i); // spills to the heap at the fifth push
/// }
/// assert_eq!(v.len(), 6);
/// assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
/// ```
#[derive(Debug, Clone)]
pub enum InlineVec<T, const N: usize> {
    /// Contents fit in the inline buffer; only `buf[..len]` is live.
    Inline {
        /// Inline storage; slots at `len..` hold `T::default()` filler.
        buf: [T; N],
        /// Number of live elements.
        len: usize,
    },
    /// Contents outgrew the inline buffer.
    Spilled(Vec<T>),
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec::Inline {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Appends an element, spilling to the heap if the inline buffer is
    /// full.
    pub fn push(&mut self, value: T) {
        match self {
            InlineVec::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(value);
                    *self = InlineVec::Spilled(v);
                }
            }
            InlineVec::Spilled(v) => v.push(value),
        }
    }

    /// Appends every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        for &x in other {
            self.push(x);
        }
    }

    /// Live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { buf, len } => &buf[..*len],
            InlineVec::Spilled(v) => v,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len,
            InlineVec::Spilled(v) => v.len(),
        }
    }

    /// Returns true if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every element, returning to inline storage so the next
    /// fill is allocation-free again.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Iterates the live elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_and_preserves_order() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i * 10);
        }
        assert!(matches!(v, InlineVec::Spilled(_)));
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn clear_returns_to_inline() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        v.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(v, InlineVec::Spilled(_)));
        v.clear();
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert!(v.is_empty());
    }

    #[test]
    fn equality_and_iteration() {
        let v: InlineVec<u64, 8> = [7u64, 8, 9].into_iter().collect();
        assert_eq!(v, vec![7, 8, 9]);
        let doubled: Vec<u64> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![14, 16, 18]);
        let total: u64 = (&v).into_iter().sum();
        assert_eq!(total, 24);
    }
}
