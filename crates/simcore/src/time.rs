//! Virtual time: nanosecond-resolution instants, durations and a clock.
//!
//! All simulation latency math is carried out on [`Nanos`], a thin wrapper
//! around `u64` nanoseconds. Virtual time has no relation to wall-clock
//! time: a [`VirtualClock`] only moves when the simulation advances it,
//! which is what makes every experiment deterministic and replayable.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time in nanoseconds.
///
/// `Nanos` is used both as a duration and (relative to simulation start)
/// as an instant. Arithmetic saturates rather than wrapping so that a
/// pathological model parameter cannot silently corrupt a timeline.
///
/// # Examples
///
/// ```
/// use rb_simcore::time::Nanos;
///
/// let seek = Nanos::from_millis(8) + Nanos::from_micros(300);
/// assert_eq!(seek.as_nanos(), 8_300_000);
/// assert_eq!(format!("{seek}"), "8.300ms");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable duration.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`Nanos::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Nanos::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(ns as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Multiplies by a dimensionless float factor, clamping at the range
    /// boundaries.
    pub fn mul_f64(self, factor: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the log2 bucket index of this latency, i.e. `floor(log2(ns))`.
    ///
    /// This is the OSprof / paper Figure 3 convention: bucket `k` holds
    /// latencies in `[2^k, 2^(k+1))` ns. A zero duration maps to bucket 0.
    pub const fn log2_bucket(self) -> u32 {
        if self.0 <= 1 {
            0
        } else {
            63 - self.0.leading_zeros()
        }
    }

    /// Integer division returning a dimensionless ratio, truncating.
    ///
    /// Division by zero saturates to `u64::MAX`.
    pub const fn ratio_of(self, rhs: Nanos) -> u64 {
        match self.0.checked_div(rhs.0) {
            Some(v) => v,
            None => u64::MAX,
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs.max(1))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nanos({})", self.0)
    }
}

impl fmt::Display for Nanos {
    /// Formats with an automatically chosen unit (`ns`, `us`, `ms`, `s`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}.{:03}us", ns / 1_000, ns % 1_000)
        } else if ns < 1_000_000_000 {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        }
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock is the single source of "now" for a simulation. Components
/// advance it explicitly; it never moves on its own.
///
/// # Examples
///
/// ```
/// use rb_simcore::time::{Nanos, VirtualClock};
///
/// let mut clock = VirtualClock::new();
/// clock.advance(Nanos::from_micros(4));
/// assert_eq!(clock.now().as_micros(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Nanos,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: Nanos::ZERO }
    }

    /// Creates a clock starting at the given instant.
    pub fn starting_at(now: Nanos) -> Self {
        VirtualClock { now }
    }

    /// Returns the current virtual instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&mut self, delta: Nanos) -> Nanos {
        self.now += delta;
        self.now
    }

    /// Moves the clock forward to `instant`.
    ///
    /// Returns the distance travelled. If `instant` is in the past the
    /// clock does not move and the distance is zero; virtual time is
    /// monotonic by construction.
    pub fn advance_to(&mut self, instant: Nanos) -> Nanos {
        if instant > self.now {
            let delta = instant - self.now;
            self.now = instant;
            delta
        } else {
            Nanos::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos::from_secs(1), Nanos::MAX);
        assert_eq!(Nanos::ZERO - Nanos::from_secs(1), Nanos::ZERO);
        assert_eq!(Nanos::from_secs(1).checked_sub(Nanos::from_secs(2)), None);
    }

    #[test]
    fn log2_bucket_matches_paper_convention() {
        // 4096 ns lands in bucket 12, the paper's "~4 us" in-memory peak.
        assert_eq!(Nanos::from_nanos(4096).log2_bucket(), 12);
        assert_eq!(Nanos::from_micros(4).log2_bucket(), 11);
        // 8.4 ms lands in bucket 23, the paper's disk peak.
        assert_eq!(Nanos::from_micros(8400).log2_bucket(), 23);
        assert_eq!(Nanos::from_nanos(0).log2_bucket(), 0);
        assert_eq!(Nanos::from_nanos(1).log2_bucket(), 0);
        assert_eq!(Nanos::from_nanos(2).log2_bucket(), 1);
        assert_eq!(Nanos::from_nanos(3).log2_bucket(), 1);
        assert_eq!(Nanos::from_nanos(4).log2_bucket(), 2);
        assert_eq!(Nanos::from_nanos(u64::MAX).log2_bucket(), 63);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", Nanos::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", Nanos::from_nanos(4_096)), "4.096us");
        assert_eq!(format!("{}", Nanos::from_millis(8)), "8.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(3)), "3.000s");
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = VirtualClock::new();
        c.advance(Nanos::from_secs(5));
        assert_eq!(c.advance_to(Nanos::from_secs(3)), Nanos::ZERO);
        assert_eq!(c.now(), Nanos::from_secs(5));
        assert_eq!(c.advance_to(Nanos::from_secs(6)), Nanos::from_secs(1));
    }

    #[test]
    fn mul_div_behave() {
        assert_eq!(Nanos::from_micros(2) * 3, Nanos::from_micros(6));
        assert_eq!(Nanos::from_micros(6) / 3, Nanos::from_micros(2));
        assert_eq!(Nanos::from_micros(6) / 0, Nanos::from_micros(6));
        assert_eq!(Nanos::from_millis(10).mul_f64(0.5), Nanos::from_millis(5));
    }

    #[test]
    fn sum_works() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }
}
