//! Property tests for the simulation foundation.

use proptest::prelude::*;
use rb_simcore::dist::{Dist, Zipf};
use rb_simcore::events::EventQueue;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{page_span, Bytes};

proptest! {
    /// Nanos addition is commutative and associative under saturation.
    #[test]
    fn nanos_addition_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (na, nb, nc) = (Nanos::from_nanos(a), Nanos::from_nanos(b), Nanos::from_nanos(c));
        prop_assert_eq!(na + nb, nb + na);
        prop_assert_eq!((na + nb) + nc, na + (nb + nc));
        // Subtraction never underflows.
        prop_assert!(na - nb <= na);
    }

    /// log2_bucket brackets its input: 2^k <= ns < 2^(k+1).
    #[test]
    fn log2_bucket_brackets(ns in 1u64..u64::MAX) {
        let k = Nanos::from_nanos(ns).log2_bucket();
        prop_assert!(ns >= 1u64 << k);
        if k < 63 {
            prop_assert!(ns < 1u64 << (k + 1));
        }
    }

    /// Display formatting of Nanos always contains a unit suffix.
    #[test]
    fn nanos_display_has_unit(ns in any::<u64>()) {
        let s = format!("{}", Nanos::from_nanos(ns));
        prop_assert!(s.ends_with("ns") || s.ends_with("us") || s.ends_with("ms") || s.ends_with('s'));
    }

    /// page_span covers exactly the bytes requested: first*ps <= offset
    /// and end*ps >= offset+len.
    #[test]
    fn page_span_covers(offset in 0u64..1 << 40, len in 1u64..1 << 20) {
        let ps = Bytes::kib(4);
        let (first, last) = page_span(Bytes::new(offset), Bytes::new(len), ps);
        prop_assert!(first * 4096 <= offset);
        prop_assert!(last * 4096 >= offset + len);
        // Never more than len/4096 + 2 pages.
        prop_assert!(last - first <= len / 4096 + 2);
    }

    /// Uniform u64 generation respects bounds for any bound.
    #[test]
    fn rng_below_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Distribution samples are finite and non-negative for sane params.
    #[test]
    fn dist_samples_sane(
        seed in any::<u64>(),
        median in 1.0f64..1e9,
        sigma in 0.0f64..2.0,
    ) {
        let mut rng = Rng::new(seed);
        let d = Dist::LogNormal { median, sigma };
        for _ in 0..20 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0);
        }
    }

    /// Zipf always returns indices in range, for any theta.
    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 1usize..5000, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// The event queue is a stable priority queue: output times are
    /// non-decreasing, and equal times preserve insertion order.
    #[test]
    fn event_queue_stable_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut last: Option<(Nanos, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated at equal times");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Forked streams do not collide for distinct labels (probabilistic,
    /// but 64-bit collisions in 20 draws would indicate a bug).
    #[test]
    fn rng_forks_disjoint(seed in any::<u64>()) {
        let parent = Rng::new(seed);
        let mut a = parent.fork("alpha");
        let mut b = parent.fork("beta");
        let mut same = 0;
        for _ in 0..20 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        prop_assert!(same == 0, "streams collided {same} times");
    }
}
