//! Property tests for the page cache.

use proptest::prelude::*;
use rb_simcache::cache::{CacheConfig, PageCache};
use rb_simcache::policy::PolicyKind;
use rb_simcache::readahead::{Readahead, ReadaheadConfig};
use rb_simcache::writeback::{Writeback, WritebackConfig};
use rb_simcore::time::Nanos;

proptest! {
    /// The readahead window never exceeds its maximum and is zero after
    /// any non-sequential access.
    #[test]
    fn readahead_window_bounded(
        accesses in proptest::collection::vec((0u64..1000, 1u64..8), 1..100),
        max_window in 1u64..64,
    ) {
        let mut ra = Readahead::new(ReadaheadConfig {
            initial_window: 4,
            max_window,
            enabled: true,
        });
        let mut expected_next: Option<u64> = None;
        for (page, count) in accesses {
            let sequential = expected_next == Some(page);
            let w = ra.on_read(page, count);
            prop_assert!(w <= max_window.max(4));
            if !sequential {
                prop_assert_eq!(w, 0, "prefetched after a random access");
            }
            expected_next = Some(page + count);
        }
    }

    /// Writeback bookkeeping: dirty count equals marks minus clears, and
    /// take_due never yields a page twice.
    #[test]
    fn writeback_no_double_flush(
        marks in proptest::collection::vec((0u64..100, 0u64..1000), 1..200),
    ) {
        let mut wb = Writeback::new(WritebackConfig {
            dirty_ratio: 0.0, // everything is always due
            max_age: Nanos::ZERO,
            batch: 8,
        });
        let mut dirty = std::collections::HashSet::new();
        for (page, t) in marks {
            let key = rb_simcache::page::PageKey::new(1, page);
            wb.mark_dirty(key, Nanos::from_nanos(t));
            dirty.insert(key);
            prop_assert_eq!(wb.dirty_count(), dirty.len());
        }
        let mut flushed = std::collections::HashSet::new();
        loop {
            let due = wb.take_due(Nanos::from_secs(10_000), 100);
            if due.is_empty() {
                break;
            }
            for k in due {
                prop_assert!(flushed.insert(k), "page flushed twice");
                prop_assert!(dirty.contains(&k));
            }
        }
        prop_assert_eq!(flushed.len(), dirty.len());
        prop_assert_eq!(wb.dirty_count(), 0);
    }

    /// Mixed reads and writes never lose dirty pages: every page written
    /// and not yet flushed/evicted/invalidated is still dirty.
    #[test]
    fn cache_dirty_accounting(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..300),
        policy_idx in 0usize..4,
    ) {
        let mut cache = PageCache::new(CacheConfig {
            capacity_pages: 32,
            policy: PolicyKind::ALL[policy_idx],
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig::default(),
        });
        let mut dirty_model = std::collections::HashSet::new();
        for (page, is_write) in ops {
            if is_write {
                let out = cache.write(1, page, 1, Nanos::ZERO);
                dirty_model.insert(page);
                for k in out.writeback_pages {
                    dirty_model.remove(&k.page);
                }
            } else {
                let out = cache.read(1, page, 1, 64, Nanos::ZERO);
                for k in out.writeback_pages {
                    dirty_model.remove(&k.page);
                }
            }
            prop_assert_eq!(
                cache.dirty_pages() as usize,
                dirty_model.len(),
                "dirty count diverged"
            );
        }
        // fsync returns exactly the model's dirty pages.
        let flushed = cache.fsync(1);
        prop_assert_eq!(flushed.len(), dirty_model.len());
    }

    /// Hit+miss accounting equals pages requested, for any access mix.
    #[test]
    fn cache_lookup_accounting(
        ops in proptest::collection::vec((0u64..256, 1u64..4), 1..200),
    ) {
        let mut cache = PageCache::new(CacheConfig {
            capacity_pages: 64,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig::default(),
        });
        let mut requested = 0u64;
        for (page, count) in ops {
            cache.read(1, page, count, 1 << 20, Nanos::ZERO);
            requested += count;
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, requested);
    }
}
