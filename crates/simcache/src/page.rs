//! Page identity and cache statistics types.

use rb_simcore::units::PageNo;

/// Identifier of a cached object (file or metadata stream).
pub type FileId = u64;

/// A page's identity: which file, which page-sized chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning file.
    pub file: FileId,
    /// Page index within the file.
    pub page: PageNo,
}

impl PageKey {
    /// Creates a page key.
    pub fn new(file: FileId, page: PageNo) -> Self {
        PageKey { file, page }
    }
}

/// Cumulative page-cache accounting.
///
/// `hits / (hits + misses)` is the cache hit ratio that, combined with the
/// memory/disk latency gap, determines every throughput figure in the
/// paper's case study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that required a media read.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Clean pages evicted.
    pub evicted_clean: u64,
    /// Dirty pages evicted (these cost a writeback).
    pub evicted_dirty: u64,
    /// Pages brought in by readahead rather than demand.
    pub prefetched: u64,
    /// Prefetched pages that were later actually read (readahead wins).
    pub prefetch_hits: u64,
    /// Dirty pages flushed by the writeback path (deadline expiry or
    /// fsync), as opposed to eviction-forced writebacks.
    pub writeback_flushed: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no lookups occurred.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of prefetched pages that proved useful.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetched == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetched as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_groups_by_file() {
        let a = PageKey::new(1, 99);
        let b = PageKey::new(2, 0);
        assert!(a < b);
        assert_eq!(PageKey::new(1, 5), PageKey::new(1, 5));
    }

    #[test]
    fn hit_ratio_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefetch_accuracy_math() {
        let s = CacheStats {
            prefetched: 10,
            prefetch_hits: 4,
            ..Default::default()
        };
        assert!((s.prefetch_accuracy() - 0.4).abs() < 1e-12);
        assert_eq!(CacheStats::default().prefetch_accuracy(), 0.0);
    }
}
