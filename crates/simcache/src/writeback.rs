//! Dirty-page tracking and writeback policy.
//!
//! Write benchmarks are dominated by *when* dirty pages reach the disk:
//! a benchmark that ends before the flusher runs measures memory, one
//! that runs past the dirty threshold measures the disk — another of the
//! paper's hidden dimensions made explicit and controllable here.

use crate::page::PageKey;
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::time::Nanos;
use std::collections::BTreeMap;

/// Writeback configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritebackConfig {
    /// Fraction of cache capacity that may be dirty before writeback
    /// becomes urgent (Linux `vm.dirty_ratio`, default 0.20).
    pub dirty_ratio: f64,
    /// Age at which a dirty page is flushed regardless of pressure
    /// (Linux `dirty_expire_centisecs`, default 30 s).
    pub max_age: Nanos,
    /// Pages flushed per writeback batch.
    pub batch: usize,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig {
            dirty_ratio: 0.20,
            max_age: Nanos::from_secs(30),
            batch: 64,
        }
    }
}

/// Tracks dirty pages and decides what to flush when.
#[derive(Debug, Clone)]
pub struct Writeback {
    config: WritebackConfig,
    /// Dirty pages ordered by the instant they were first dirtied.
    by_age: BTreeMap<(Nanos, PageKey), ()>,
    /// Dirty-state probe map (`is_dirty` runs on every eviction).
    age_of: FnvHashMap<PageKey, Nanos>,
}

impl Writeback {
    /// Creates an empty tracker.
    pub fn new(config: WritebackConfig) -> Self {
        Writeback {
            config,
            by_age: BTreeMap::new(),
            age_of: Default::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WritebackConfig {
        &self.config
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.age_of.len()
    }

    /// Returns true if `key` is dirty.
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.age_of.contains_key(&key)
    }

    /// Marks a page dirty at `now` (keeps the original dirty time on
    /// repeated writes, as Linux does for expiry purposes).
    pub fn mark_dirty(&mut self, key: PageKey, now: Nanos) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.age_of.entry(key) {
            e.insert(now);
            self.by_age.insert((now, key), ());
        }
    }

    /// Clears the dirty state (page written back or invalidated).
    pub fn clear(&mut self, key: PageKey) {
        if let Some(t) = self.age_of.remove(&key) {
            self.by_age.remove(&(t, key));
        }
    }

    /// Returns true if dirty pressure exceeds the ratio for a cache of
    /// `capacity_pages`.
    pub fn over_ratio(&self, capacity_pages: u64) -> bool {
        self.dirty_count() as f64 > self.config.dirty_ratio * capacity_pages.max(1) as f64
    }

    /// Collects up to one batch of pages due for writeback at `now`:
    /// expired pages always, plus oldest-first overflow while over the
    /// dirty ratio. Returned pages are cleared from the tracker (the
    /// caller performs the media writes).
    pub fn take_due(&mut self, now: Nanos, capacity_pages: u64) -> Vec<PageKey> {
        let mut out = Vec::new();
        while out.len() < self.config.batch {
            let Some((&(dirtied, key), ())) = self.by_age.iter().next() else {
                break;
            };
            let expired = now.saturating_sub(dirtied) >= self.config.max_age;
            let pressured = self.over_ratio(capacity_pages);
            if !(expired || pressured) {
                break;
            }
            self.by_age.remove(&(dirtied, key));
            self.age_of.remove(&key);
            out.push(key);
        }
        out
    }

    /// Drains every dirty page oldest-first (fsync / unmount semantics).
    pub fn drain_all(&mut self) -> Vec<PageKey> {
        let keys: Vec<PageKey> = self.by_age.keys().map(|&(_, k)| k).collect();
        self.by_age.clear();
        self.age_of.clear();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn dirty_bookkeeping() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        wb.mark_dirty(key(2), Nanos::from_secs(2));
        assert_eq!(wb.dirty_count(), 2);
        assert!(wb.is_dirty(key(1)));
        wb.clear(key(1));
        assert!(!wb.is_dirty(key(1)));
        assert_eq!(wb.dirty_count(), 1);
    }

    #[test]
    fn rewrite_keeps_first_dirty_time() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        wb.mark_dirty(key(1), Nanos::from_secs(100));
        // Expires based on the first dirty time.
        let due = wb.take_due(Nanos::from_secs(31), 1_000_000);
        assert_eq!(due, vec![key(1)]);
    }

    #[test]
    fn expiry_flushes_old_pages_only() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(0));
        wb.mark_dirty(key(2), Nanos::from_secs(20));
        let due = wb.take_due(Nanos::from_secs(35), 1_000_000);
        assert_eq!(due, vec![key(1)]);
        assert_eq!(wb.dirty_count(), 1);
    }

    #[test]
    fn ratio_pressure_flushes_oldest_first() {
        let cfg = WritebackConfig {
            dirty_ratio: 0.5,
            ..Default::default()
        };
        let mut wb = Writeback::new(cfg);
        for i in 0..8 {
            wb.mark_dirty(key(i), Nanos::from_secs(i));
        }
        // Capacity 10, ratio 0.5: 8 dirty > 5, flush down toward the ratio.
        let due = wb.take_due(Nanos::from_secs(9), 10);
        assert!(!due.is_empty());
        assert_eq!(due[0], key(0));
        // Flushing stops once under the ratio.
        assert!(wb.dirty_count() <= 5);
    }

    #[test]
    fn batch_limit_respected() {
        let cfg = WritebackConfig {
            batch: 3,
            dirty_ratio: 0.0,
            ..Default::default()
        };
        let mut wb = Writeback::new(cfg);
        for i in 0..10 {
            wb.mark_dirty(key(i), Nanos::ZERO);
        }
        let due = wb.take_due(Nanos::from_secs(100), 10);
        assert_eq!(due.len(), 3);
    }

    #[test]
    fn drain_all_empties_in_age_order() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(2), Nanos::from_secs(2));
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        let drained = wb.drain_all();
        assert_eq!(drained, vec![key(1), key(2)]);
        assert_eq!(wb.dirty_count(), 0);
    }

    #[test]
    fn nothing_due_under_thresholds() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(100));
        let due = wb.take_due(Nanos::from_secs(101), 1_000_000);
        assert!(due.is_empty());
    }
}
