//! Dirty-page tracking and writeback policy.
//!
//! Write benchmarks are dominated by *when* dirty pages reach the disk:
//! a benchmark that ends before the flusher runs measures memory, one
//! that runs past the dirty threshold measures the disk — another of the
//! paper's hidden dimensions made explicit and controllable here.

use crate::page::PageKey;
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::time::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Writeback configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritebackConfig {
    /// Fraction of cache capacity that may be dirty before writeback
    /// becomes urgent (Linux `vm.dirty_ratio`, default 0.20).
    pub dirty_ratio: f64,
    /// Age at which a dirty page is flushed regardless of pressure
    /// (Linux `dirty_expire_centisecs`, default 30 s).
    pub max_age: Nanos,
    /// Pages flushed per writeback batch.
    pub batch: usize,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig {
            dirty_ratio: 0.20,
            max_age: Nanos::from_secs(30),
            batch: 64,
        }
    }
}

/// Tracks dirty pages and decides what to flush when.
#[derive(Debug, Clone)]
pub struct Writeback {
    config: WritebackConfig,
    /// Dirty pages ordered by the instant they were first dirtied: a
    /// min-heap with lazy deletion. `age_of` is the ground truth; a
    /// heap entry whose `(instant, key)` no longer matches `age_of` is
    /// stale (cleared or re-dirtied) and skipped on pop. Flush order is
    /// identical to an ordered-map walk — ascending `(instant, key)` —
    /// without paying a tree rebalance on every `mark_dirty`/`clear`.
    by_age: BinaryHeap<Reverse<(Nanos, PageKey)>>,
    /// Dirty-state probe map (`is_dirty` runs on every eviction).
    age_of: FnvHashMap<PageKey, Nanos>,
}

impl Writeback {
    /// Creates an empty tracker.
    pub fn new(config: WritebackConfig) -> Self {
        Writeback {
            config,
            by_age: BinaryHeap::new(),
            age_of: Default::default(),
        }
    }

    /// Drops stale heap entries once they outnumber the live ones, so
    /// the heap stays proportional to the dirty set.
    fn maybe_compact(&mut self) {
        if self.by_age.len() > 2 * self.age_of.len() + 64 {
            self.by_age = self.age_of.iter().map(|(&k, &t)| Reverse((t, k))).collect();
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WritebackConfig {
        &self.config
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.age_of.len()
    }

    /// Returns true if `key` is dirty.
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.age_of.contains_key(&key)
    }

    /// Marks a page dirty at `now` (keeps the original dirty time on
    /// repeated writes, as Linux does for expiry purposes).
    pub fn mark_dirty(&mut self, key: PageKey, now: Nanos) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.age_of.entry(key) {
            e.insert(now);
            self.by_age.push(Reverse((now, key)));
        }
    }

    /// Clears the dirty state (page written back or invalidated). The
    /// heap entry is left behind and skipped lazily.
    pub fn clear(&mut self, key: PageKey) {
        self.age_of.remove(&key);
    }

    /// [`Writeback::clear`] that reports whether the page was dirty, so
    /// eviction decides dirty-vs-clean with a single probe.
    pub fn take(&mut self, key: PageKey) -> bool {
        self.age_of.remove(&key).is_some()
    }

    /// Returns true if dirty pressure exceeds the ratio for a cache of
    /// `capacity_pages`.
    pub fn over_ratio(&self, capacity_pages: u64) -> bool {
        self.dirty_count() as f64 > self.config.dirty_ratio * capacity_pages.max(1) as f64
    }

    /// Collects up to one batch of pages due for writeback at `now`:
    /// expired pages always, plus oldest-first overflow while over the
    /// dirty ratio. Returned pages are cleared from the tracker (the
    /// caller performs the media writes).
    pub fn take_due(&mut self, now: Nanos, capacity_pages: u64) -> Vec<PageKey> {
        let mut out = Vec::new();
        while out.len() < self.config.batch {
            let Some(&Reverse((dirtied, key))) = self.by_age.peek() else {
                break;
            };
            // Stale entry: the page was cleared (or re-dirtied at a
            // different instant) after this entry was pushed.
            if self.age_of.get(&key) != Some(&dirtied) {
                self.by_age.pop();
                continue;
            }
            let expired = now.saturating_sub(dirtied) >= self.config.max_age;
            let pressured = self.over_ratio(capacity_pages);
            if !(expired || pressured) {
                break;
            }
            self.by_age.pop();
            self.age_of.remove(&key);
            out.push(key);
        }
        self.maybe_compact();
        out
    }

    /// Drains every dirty page oldest-first (fsync / unmount semantics).
    pub fn drain_all(&mut self) -> Vec<PageKey> {
        let mut live: Vec<(Nanos, PageKey)> = self.age_of.iter().map(|(&k, &t)| (t, k)).collect();
        live.sort_unstable();
        self.by_age.clear();
        self.age_of.clear();
        live.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn dirty_bookkeeping() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        wb.mark_dirty(key(2), Nanos::from_secs(2));
        assert_eq!(wb.dirty_count(), 2);
        assert!(wb.is_dirty(key(1)));
        wb.clear(key(1));
        assert!(!wb.is_dirty(key(1)));
        assert_eq!(wb.dirty_count(), 1);
    }

    #[test]
    fn rewrite_keeps_first_dirty_time() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        wb.mark_dirty(key(1), Nanos::from_secs(100));
        // Expires based on the first dirty time.
        let due = wb.take_due(Nanos::from_secs(31), 1_000_000);
        assert_eq!(due, vec![key(1)]);
    }

    #[test]
    fn expiry_flushes_old_pages_only() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(0));
        wb.mark_dirty(key(2), Nanos::from_secs(20));
        let due = wb.take_due(Nanos::from_secs(35), 1_000_000);
        assert_eq!(due, vec![key(1)]);
        assert_eq!(wb.dirty_count(), 1);
    }

    #[test]
    fn ratio_pressure_flushes_oldest_first() {
        let cfg = WritebackConfig {
            dirty_ratio: 0.5,
            ..Default::default()
        };
        let mut wb = Writeback::new(cfg);
        for i in 0..8 {
            wb.mark_dirty(key(i), Nanos::from_secs(i));
        }
        // Capacity 10, ratio 0.5: 8 dirty > 5, flush down toward the ratio.
        let due = wb.take_due(Nanos::from_secs(9), 10);
        assert!(!due.is_empty());
        assert_eq!(due[0], key(0));
        // Flushing stops once under the ratio.
        assert!(wb.dirty_count() <= 5);
    }

    #[test]
    fn batch_limit_respected() {
        let cfg = WritebackConfig {
            batch: 3,
            dirty_ratio: 0.0,
            ..Default::default()
        };
        let mut wb = Writeback::new(cfg);
        for i in 0..10 {
            wb.mark_dirty(key(i), Nanos::ZERO);
        }
        let due = wb.take_due(Nanos::from_secs(100), 10);
        assert_eq!(due.len(), 3);
    }

    #[test]
    fn drain_all_empties_in_age_order() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(2), Nanos::from_secs(2));
        wb.mark_dirty(key(1), Nanos::from_secs(1));
        let drained = wb.drain_all();
        assert_eq!(drained, vec![key(1), key(2)]);
        assert_eq!(wb.dirty_count(), 0);
    }

    #[test]
    fn nothing_due_under_thresholds() {
        let mut wb = Writeback::new(WritebackConfig::default());
        wb.mark_dirty(key(1), Nanos::from_secs(100));
        let due = wb.take_due(Nanos::from_secs(101), 1_000_000);
        assert!(due.is_empty());
    }
}
