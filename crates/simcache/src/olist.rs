//! Internal ordered-set primitive shared by the 2Q and ARC policies.

use crate::page::PageKey;
use rb_simcore::fnv::FnvHashMap;
use std::collections::BTreeMap;

/// A set of page keys ordered by insertion/refresh recency.
///
/// Front = oldest (LRU end), back = newest (MRU end). All operations are
/// O(log n) via a monotone stamp index.
#[derive(Debug, Default, Clone)]
pub(crate) struct OrderedSet {
    stamp_of: FnvHashMap<PageKey, u64>,
    by_stamp: BTreeMap<u64, PageKey>,
    next_stamp: u64,
}

impl OrderedSet {
    pub(crate) fn new() -> Self {
        OrderedSet::default()
    }

    /// Inserts or refreshes `key` at the MRU end.
    pub(crate) fn push_back(&mut self, key: PageKey) {
        if let Some(old) = self.stamp_of.get(&key).copied() {
            self.by_stamp.remove(&old);
        }
        let s = self.next_stamp;
        self.next_stamp += 1;
        self.stamp_of.insert(key, s);
        self.by_stamp.insert(s, key);
    }

    /// Removes and returns the LRU (oldest) key.
    pub(crate) fn pop_front(&mut self) -> Option<PageKey> {
        let (&stamp, &key) = self.by_stamp.iter().next()?;
        self.by_stamp.remove(&stamp);
        self.stamp_of.remove(&key);
        Some(key)
    }

    /// Removes `key` if present; returns whether it was present.
    pub(crate) fn remove(&mut self, key: PageKey) -> bool {
        match self.stamp_of.remove(&key) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }

    pub(crate) fn contains(&self, key: PageKey) -> bool {
        self.stamp_of.contains_key(&key)
    }

    pub(crate) fn len(&self) -> usize {
        self.stamp_of.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.stamp_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn fifo_order_without_refresh() {
        let mut s = OrderedSet::new();
        for i in 0..5 {
            s.push_back(key(i));
        }
        for i in 0..5 {
            assert_eq!(s.pop_front(), Some(key(i)));
        }
        assert!(s.pop_front().is_none());
    }

    #[test]
    fn refresh_moves_to_back() {
        let mut s = OrderedSet::new();
        s.push_back(key(0));
        s.push_back(key(1));
        s.push_back(key(0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop_front(), Some(key(1)));
        assert_eq!(s.pop_front(), Some(key(0)));
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = OrderedSet::new();
        s.push_back(key(7));
        assert!(s.remove(key(7)));
        assert!(!s.remove(key(7)));
        assert!(s.is_empty());
        assert!(!s.contains(key(7)));
    }
}
