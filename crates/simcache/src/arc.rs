//! Adaptive Replacement Cache (Megiddo & Modha, FAST '03).
//!
//! ARC balances recency (T1) against frequency (T2) with a self-tuning
//! target `p`, steered by ghost hits in B1 (evicted from T1) and B2
//! (evicted from T2). It adapts to workload shifts that fixed policies
//! miss — exactly the kind of cache behaviour the paper says benchmarks
//! never examine.

use crate::olist::OrderedSet;
use crate::page::PageKey;
use crate::policy::EvictionPolicy;

/// The ARC policy.
///
/// Named `ArcPolicy` to avoid colliding with [`std::sync::Arc`] in user
/// imports.
#[derive(Debug)]
pub struct ArcPolicy {
    t1: OrderedSet,
    t2: OrderedSet,
    b1: OrderedSet,
    b2: OrderedSet,
    /// Cache capacity `c` the ghosts are scaled to.
    capacity: u64,
    /// Adaptive target for |T1|.
    p: u64,
}

impl ArcPolicy {
    /// Creates an ARC policy for a cache of `capacity_pages`.
    pub fn new(capacity_pages: u64) -> Self {
        ArcPolicy {
            t1: OrderedSet::new(),
            t2: OrderedSet::new(),
            b1: OrderedSet::new(),
            b2: OrderedSet::new(),
            capacity: capacity_pages.max(2),
            p: 0,
        }
    }

    /// Current adaptation target for the recency list (test visibility).
    pub fn target_p(&self) -> u64 {
        self.p
    }

    /// Sizes of (T1, T2, B1, B2) for diagnostics.
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    fn trim_ghosts(&mut self) {
        // |T1| + |B1| <= c and total directory <= 2c.
        while self.t1.len() + self.b1.len() > self.capacity as usize {
            if self.b1.pop_front().is_none() {
                break;
            }
        }
        while self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len()
            > 2 * self.capacity as usize
        {
            if self.b2.pop_front().is_none() {
                break;
            }
        }
    }
}

impl EvictionPolicy for ArcPolicy {
    fn insert(&mut self, key: PageKey) {
        if self.t1.contains(key) || self.t2.contains(key) {
            // Treat as a hit.
            self.touch(key);
            return;
        }
        if self.b1.remove(key) {
            // Ghost hit in B1: favour recency.
            let delta = (self.b2.len().max(1) / self.b1.len().max(1)).max(1) as u64;
            self.p = (self.p + delta).min(self.capacity);
            self.t2.push_back(key);
        } else if self.b2.remove(key) {
            // Ghost hit in B2: favour frequency.
            let delta = (self.b1.len().max(1) / self.b2.len().max(1)).max(1) as u64;
            self.p = self.p.saturating_sub(delta);
            self.t2.push_back(key);
        } else {
            self.t1.push_back(key);
        }
        self.trim_ghosts();
    }

    fn touch(&mut self, key: PageKey) {
        if self.t1.remove(key) || self.t2.contains(key) {
            self.t2.push_back(key);
        }
    }

    fn evict(&mut self) -> Option<PageKey> {
        // REPLACE: evict from T1 if it exceeds the target, else from T2.
        let from_t1 =
            !self.t1.is_empty() && (self.t1.len() as u64 > self.p.max(1) || self.t2.is_empty());
        let victim = if from_t1 {
            let v = self.t1.pop_front();
            if let Some(k) = v {
                self.b1.push_back(k);
            }
            v
        } else {
            let v = self.t2.pop_front();
            if let Some(k) = v {
                self.b2.push_back(k);
            }
            v
        };
        let victim = victim
            .or_else(|| self.t1.pop_front())
            .or_else(|| self.t2.pop_front());
        self.trim_ghosts();
        victim
    }

    fn remove(&mut self, key: PageKey) {
        let _ = self.t1.remove(key) || self.t2.remove(key);
        self.b1.remove(key);
        self.b2.remove(key);
    }

    fn contains(&self, key: PageKey) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn name(&self) -> &'static str {
        "arc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn single_touch_stays_in_t1() {
        let mut a = ArcPolicy::new(8);
        a.insert(key(1));
        let (t1, t2, _, _) = a.list_sizes();
        assert_eq!((t1, t2), (1, 0));
    }

    #[test]
    fn second_touch_promotes_to_t2() {
        let mut a = ArcPolicy::new(8);
        a.insert(key(1));
        a.touch(key(1));
        let (t1, t2, _, _) = a.list_sizes();
        assert_eq!((t1, t2), (0, 1));
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut a = ArcPolicy::new(4);
        for i in 0..4 {
            a.insert(key(i));
        }
        let p0 = a.target_p();
        a.evict(); // key 0 -> B1
        a.insert(key(0)); // ghost hit
        assert!(a.target_p() > p0, "p did not grow on B1 hit");
        // Promoted straight to T2.
        let (_, t2, _, _) = a.list_sizes();
        assert!(t2 >= 1);
    }

    #[test]
    fn ghost_hit_in_b2_shrinks_p() {
        let mut a = ArcPolicy::new(4);
        // Build frequency traffic: promote 0 to T2, then push it to B2.
        a.insert(key(0));
        a.touch(key(0));
        // Grow p so the shrink is observable.
        for i in 1..5 {
            a.insert(key(i));
        }
        a.evict();
        a.evict();
        // Force T2 eviction by draining T1 empty first.
        while a.list_sizes().0 > 0 {
            a.evict();
        }
        a.evict(); // now from T2 -> B2
        let p_before = a.target_p();
        a.insert(key(0)); // whichever ghost 0 is in adjusts p
        assert!(a.target_p() <= p_before.max(1));
    }

    #[test]
    fn frequency_protected_from_scan() {
        let mut a = ArcPolicy::new(8);
        // Hot pages touched repeatedly live in T2.
        for i in 0..4 {
            a.insert(key(i));
            a.touch(key(i));
        }
        // Scan of cold pages fills T1; evictions should drain T1 first.
        for i in 100..120 {
            a.insert(key(i));
            while a.len() > 8 {
                a.evict();
            }
        }
        let surviving_hot = (0..4).filter(|&i| a.contains(key(i))).count();
        assert!(
            surviving_hot >= 3,
            "scan evicted hot set: {surviving_hot}/4 left"
        );
    }

    #[test]
    fn directory_stays_bounded() {
        let mut a = ArcPolicy::new(16);
        for i in 0..1000 {
            a.insert(key(i));
            while a.len() > 16 {
                a.evict();
            }
        }
        let (t1, t2, b1, b2) = a.list_sizes();
        assert!(t1 + t2 <= 16);
        assert!(
            t1 + t2 + b1 + b2 <= 32,
            "directory leak: {:?}",
            (t1, t2, b1, b2)
        );
    }
}
