//! Sequential readahead: Linux-style window state machine.
//!
//! The paper notes that applications "can rarely control how a file
//! system caches and prefetches data", and that prefetching is tangled
//! with layout in every on-disk benchmark. Modelling readahead explicitly
//! lets rocketbench *untangle* them: experiments can switch prefetching
//! off, cap the window, or compare policies while holding layout fixed.

use rb_simcore::units::PageNo;

/// Readahead configuration (per open file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadaheadConfig {
    /// Window size used when a sequential stream is first detected.
    pub initial_window: u64,
    /// Maximum window size (Linux default: 128 KiB = 32 pages).
    pub max_window: u64,
    /// Whether readahead is enabled at all.
    pub enabled: bool,
}

impl Default for ReadaheadConfig {
    fn default() -> Self {
        ReadaheadConfig {
            initial_window: 4,
            max_window: 32,
            enabled: true,
        }
    }
}

impl ReadaheadConfig {
    /// Readahead disabled (pure demand paging).
    pub fn disabled() -> Self {
        ReadaheadConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Per-file readahead state machine.
///
/// Detects sequential streams (next read begins where the previous one
/// ended), doubling the prefetch window per sequential access up to the
/// maximum; any non-sequential access collapses the window, so random
/// workloads pay no prefetch tax.
///
/// # Examples
///
/// ```
/// use rb_simcache::readahead::{Readahead, ReadaheadConfig};
///
/// let mut ra = Readahead::new(ReadaheadConfig::default());
/// assert_eq!(ra.on_read(0, 2), 0);  // first touch: no history
/// assert_eq!(ra.on_read(2, 2), 4);  // sequential: initial window
/// assert_eq!(ra.on_read(4, 2), 8);  // doubled
/// assert_eq!(ra.on_read(100, 2), 0); // random: collapsed
/// ```
#[derive(Debug, Clone)]
pub struct Readahead {
    config: ReadaheadConfig,
    expected_next: Option<PageNo>,
    window: u64,
}

impl Readahead {
    /// Creates state for a freshly opened file.
    pub fn new(config: ReadaheadConfig) -> Self {
        Readahead {
            config,
            expected_next: None,
            window: 0,
        }
    }

    /// Current window size in pages.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Notes a read of `count` pages starting at `page`; returns how many
    /// pages *beyond the request* should be prefetched.
    pub fn on_read(&mut self, page: PageNo, count: u64) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        let sequential = self.expected_next == Some(page);
        self.expected_next = Some(page + count.max(1));
        if sequential {
            self.window = if self.window == 0 {
                self.config.initial_window
            } else {
                (self.window * 2).min(self.config.max_window)
            };
        } else {
            self.window = 0;
        }
        self.window
    }

    /// Resets stream detection (e.g. after a seek or reopen).
    pub fn reset(&mut self) {
        self.expected_next = None;
        self.window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_to_max_and_holds() {
        let mut ra = Readahead::new(ReadaheadConfig::default());
        ra.on_read(0, 1);
        let sizes: Vec<u64> = (1..9).map(|next| ra.on_read(next, 1)).collect();
        assert_eq!(sizes, vec![4, 8, 16, 32, 32, 32, 32, 32]);
    }

    #[test]
    fn random_never_prefetches() {
        let mut ra = Readahead::new(ReadaheadConfig::default());
        let pages = [100u64, 3, 77, 12, 500, 9];
        for p in pages {
            assert_eq!(ra.on_read(p, 2), 0, "prefetched on random access at {p}");
        }
    }

    #[test]
    fn interleaved_random_collapses_stream() {
        let mut ra = Readahead::new(ReadaheadConfig::default());
        ra.on_read(0, 2);
        assert!(ra.on_read(2, 2) > 0);
        ra.on_read(99, 2); // stream broken
        assert_eq!(ra.window(), 0);
        // Rebuilding the stream restarts from the initial window.
        assert_eq!(ra.on_read(101, 2), 4);
    }

    #[test]
    fn disabled_config_is_inert() {
        let mut ra = Readahead::new(ReadaheadConfig::disabled());
        ra.on_read(0, 2);
        assert_eq!(ra.on_read(2, 2), 0);
        assert_eq!(ra.window(), 0);
    }

    #[test]
    fn reset_forgets_history() {
        let mut ra = Readahead::new(ReadaheadConfig::default());
        ra.on_read(0, 2);
        ra.reset();
        // Would have been sequential without the reset.
        assert_eq!(ra.on_read(2, 2), 0);
    }
}
