//! # rb-simcache — simulated page cache
//!
//! The memory layer between workloads and media: residency tracking with
//! pluggable replacement (LRU, CLOCK, 2Q, ARC), Linux-style sequential
//! readahead, and dirty-page writeback.
//!
//! The paper's central case study is *entirely* a cache story: the
//! Figure 1 cliff is the file size crossing cache capacity, the fragile
//! ±35 % transition region is a few megabytes of capacity wobble, the
//! Figure 2 S-curve is cache fill, and the Figure 3/4 bimodality is the
//! hit/miss latency mixture. This crate makes each of those knobs an
//! explicit, testable parameter.
//!
//! ## Example
//!
//! ```
//! use rb_simcache::prelude::*;
//! use rb_simcore::time::Nanos;
//!
//! let mut cache = PageCache::new(CacheConfig::paper_testbed());
//! let out = cache.read(1, 0, 2, 100_000, Nanos::ZERO);
//! assert_eq!(out.miss_pages.len(), 2); // cold cache: both pages miss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod cache;
pub mod clock;
pub mod lru;
mod olist;
pub mod page;
pub mod policy;
pub mod readahead;
pub mod twoq;
pub mod writeback;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::arc::ArcPolicy;
    pub use crate::cache::{CacheConfig, PageCache, ReadOutcome, WriteOutcome};
    pub use crate::clock::Clock;
    pub use crate::lru::Lru;
    pub use crate::page::{CacheStats, FileId, PageKey};
    pub use crate::policy::{EvictionPolicy, PolicyKind};
    pub use crate::readahead::{Readahead, ReadaheadConfig};
    pub use crate::twoq::TwoQ;
    pub use crate::writeback::{Writeback, WritebackConfig};
}
