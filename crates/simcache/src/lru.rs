//! Least-recently-used replacement.
//!
//! The reference policy: Linux's page cache approximates LRU (via the
//! two-list active/inactive scheme), and the paper's Figure 1 analysis —
//! steady-state hit ratio = capacity / file size under uniform random
//! access — holds exactly for LRU.

use crate::page::PageKey;
use crate::policy::EvictionPolicy;
use rb_simcore::fnv::FnvHashMap;

/// Sentinel for "no slot".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: PageKey,
    prev: u32,
    next: u32,
}

/// Exact LRU as an intrusive doubly-linked list over a slab.
///
/// Every operation — insert, touch, evict, remove — is O(1): one FNV
/// map probe plus pointer surgery. This replaced a stamp + ordered-map
/// implementation whose per-touch tree rebalancing dominated the cache
/// hot path; the recency order (and therefore every eviction decision)
/// is identical.
#[derive(Debug)]
pub struct Lru {
    slots: Vec<Node>,
    free: Vec<u32>,
    index: FnvHashMap<PageKey, u32>,
    /// Least recently used end (eviction side); `NIL` when empty.
    head: u32,
    /// Most recently used end.
    tail: u32,
}

impl Default for Lru {
    fn default() -> Self {
        Self::new()
    }
}

impl Lru {
    /// Creates an empty LRU tracker.
    pub fn new() -> Self {
        Lru {
            slots: Vec::new(),
            free: Vec::new(),
            index: FnvHashMap::default(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlinks a slot from the list (leaves it allocated).
    fn unlink(&mut self, i: u32) {
        let Node { prev, next, .. } = self.slots[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Links a slot at the MRU end.
    fn push_tail(&mut self, i: u32) {
        self.slots[i as usize].prev = self.tail;
        self.slots[i as usize].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.slots[t as usize].next = i,
        }
        self.tail = i;
    }

    fn bump(&mut self, key: PageKey) {
        use std::collections::hash_map::Entry;
        // Single index probe for both the refresh and the insert case.
        let slots = &mut self.slots;
        let free = &mut self.free;
        let (i, refresh) = match self.index.entry(key) {
            Entry::Occupied(e) => (*e.get(), true),
            Entry::Vacant(e) => {
                let i = match free.pop() {
                    Some(i) => {
                        slots[i as usize].key = key;
                        i
                    }
                    None => {
                        slots.push(Node {
                            key,
                            prev: NIL,
                            next: NIL,
                        });
                        (slots.len() - 1) as u32
                    }
                };
                e.insert(i);
                (i, false)
            }
        };
        if refresh {
            self.unlink(i);
        }
        self.push_tail(i);
    }
}

impl EvictionPolicy for Lru {
    fn insert(&mut self, key: PageKey) {
        self.bump(key);
    }

    fn touch(&mut self, key: PageKey) {
        // Single index probe: a hit moves the slot to the MRU end, a
        // miss is a no-op (never inserts, unlike `bump`).
        if let Some(&i) = self.index.get(&key) {
            self.unlink(i);
            self.push_tail(i);
        }
    }

    fn evict(&mut self) -> Option<PageKey> {
        let i = self.head;
        if i == NIL {
            return None;
        }
        let key = self.slots[i as usize].key;
        self.unlink(i);
        self.index.remove(&key);
        self.free.push(i);
        Some(key)
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(i) = self.index.remove(&key) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn contains(&self, key: PageKey) -> bool {
        self.index.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn evicts_least_recent() {
        let mut l = Lru::new();
        for i in 0..5 {
            l.insert(key(i));
        }
        // Touch 0 so 1 becomes the oldest.
        l.touch(key(0));
        assert_eq!(l.evict(), Some(key(1)));
        assert_eq!(l.evict(), Some(key(2)));
    }

    #[test]
    fn reinsert_refreshes() {
        let mut l = Lru::new();
        l.insert(key(1));
        l.insert(key(2));
        l.insert(key(1)); // refresh
        assert_eq!(l.len(), 2);
        assert_eq!(l.evict(), Some(key(2)));
    }

    #[test]
    fn touch_unknown_is_noop() {
        let mut l = Lru::new();
        l.touch(key(9));
        assert!(l.is_empty());
    }

    #[test]
    fn remove_then_reuse_slots() {
        let mut l = Lru::new();
        for i in 0..8 {
            l.insert(key(i));
        }
        l.remove(key(3));
        l.remove(key(0));
        assert_eq!(l.len(), 6);
        assert!(!l.contains(key(3)));
        // Freed slots are reused without disturbing recency order.
        l.insert(key(100));
        l.insert(key(101));
        assert_eq!(l.evict(), Some(key(1)));
        assert_eq!(l.evict(), Some(key(2)));
        assert_eq!(l.evict(), Some(key(4)));
    }

    #[test]
    fn sequential_scan_evicts_in_order() {
        let mut l = Lru::new();
        for i in 0..100 {
            l.insert(key(i));
        }
        for i in 0..100 {
            assert_eq!(l.evict(), Some(key(i)));
        }
    }
}
