//! Least-recently-used replacement.
//!
//! The reference policy: Linux's page cache approximates LRU (via the
//! two-list active/inactive scheme), and the paper's Figure 1 analysis —
//! steady-state hit ratio = capacity / file size under uniform random
//! access — holds exactly for LRU.

use crate::page::PageKey;
use crate::policy::EvictionPolicy;
use std::collections::{BTreeMap, HashMap};

/// Exact LRU via a monotone access stamp and an ordered index.
///
/// Operations are O(log n); at the ~100 k resident pages of the paper's
/// experiments this is comfortably fast and trivially correct.
#[derive(Debug, Default)]
pub struct Lru {
    stamp_of: HashMap<PageKey, u64>,
    by_stamp: BTreeMap<u64, PageKey>,
    next_stamp: u64,
}

impl Lru {
    /// Creates an empty LRU tracker.
    pub fn new() -> Self {
        Lru::default()
    }

    fn bump(&mut self, key: PageKey) {
        if let Some(old) = self.stamp_of.get(&key).copied() {
            self.by_stamp.remove(&old);
        }
        let s = self.next_stamp;
        self.next_stamp += 1;
        self.stamp_of.insert(key, s);
        self.by_stamp.insert(s, key);
    }
}

impl EvictionPolicy for Lru {
    fn insert(&mut self, key: PageKey) {
        self.bump(key);
    }

    fn touch(&mut self, key: PageKey) {
        if self.stamp_of.contains_key(&key) {
            self.bump(key);
        }
    }

    fn evict(&mut self) -> Option<PageKey> {
        let (&stamp, &key) = self.by_stamp.iter().next()?;
        self.by_stamp.remove(&stamp);
        self.stamp_of.remove(&key);
        Some(key)
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(stamp) = self.stamp_of.remove(&key) {
            self.by_stamp.remove(&stamp);
        }
    }

    fn contains(&self, key: PageKey) -> bool {
        self.stamp_of.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn evicts_least_recent() {
        let mut l = Lru::new();
        for i in 0..5 {
            l.insert(key(i));
        }
        // Touch 0 so 1 becomes the oldest.
        l.touch(key(0));
        assert_eq!(l.evict(), Some(key(1)));
        assert_eq!(l.evict(), Some(key(2)));
    }

    #[test]
    fn reinsert_refreshes() {
        let mut l = Lru::new();
        l.insert(key(1));
        l.insert(key(2));
        l.insert(key(1)); // refresh
        assert_eq!(l.len(), 2);
        assert_eq!(l.evict(), Some(key(2)));
    }

    #[test]
    fn touch_unknown_is_noop() {
        let mut l = Lru::new();
        l.touch(key(9));
        assert!(l.is_empty());
    }

    #[test]
    fn sequential_scan_evicts_in_order() {
        let mut l = Lru::new();
        for i in 0..100 {
            l.insert(key(i));
        }
        for i in 0..100 {
            assert_eq!(l.evict(), Some(key(i)));
        }
    }
}
