//! The eviction-policy abstraction and policy selection.
//!
//! The paper asks: "How are elements evicted from the cache? To the best
//! of our knowledge, none of the existing benchmarks consider these
//! questions." rocketbench makes eviction a first-class experimental
//! variable: every policy implements [`EvictionPolicy`], and the cache
//! benchmarks sweep across them.

use crate::page::PageKey;

/// A page replacement policy.
///
/// The policy tracks page identities only; residency bookkeeping (which
/// pages exist, dirty state) lives in the cache itself. Implementations
/// must uphold two invariants, checked by the shared conformance tests:
///
/// 1. `evict` returns a page previously inserted and not yet evicted or
///    removed (no phantom evictions).
/// 2. After `insert(k)`, `contains(k)` holds until `k` is evicted or
///    removed.
pub trait EvictionPolicy: std::fmt::Debug {
    /// Notes that `key` was inserted (it was not resident).
    fn insert(&mut self, key: PageKey);

    /// Notes that a resident `key` was accessed.
    fn touch(&mut self, key: PageKey);

    /// Chooses a victim and removes it from the policy's tracking.
    ///
    /// Returns `None` when no page is tracked.
    fn evict(&mut self) -> Option<PageKey>;

    /// Removes `key` without treating it as an eviction (invalidation).
    fn remove(&mut self, key: PageKey);

    /// Returns true if the policy currently tracks `key`.
    fn contains(&self, key: PageKey) -> bool;

    /// Number of tracked pages.
    fn len(&self) -> usize;

    /// Returns true if no pages are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Selectable replacement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// Second-chance clock.
    Clock,
    /// 2Q (Johnson & Shasha): FIFO probation + LRU protection.
    TwoQ,
    /// Adaptive Replacement Cache (Megiddo & Modha).
    Arc,
}

impl PolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::Arc,
    ];

    /// Instantiates the policy for a cache of `capacity_pages`.
    pub fn build(self, capacity_pages: u64) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(crate::lru::Lru::new()),
            PolicyKind::Clock => Box::new(crate::clock::Clock::new()),
            PolicyKind::TwoQ => Box::new(crate::twoq::TwoQ::new(capacity_pages)),
            PolicyKind::Arc => Box::new(crate::arc::ArcPolicy::new(capacity_pages)),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Clock => "clock",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Arc => "arc",
        }
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every policy.

    use super::*;
    use rb_simcore::rng::Rng;
    use std::collections::HashSet;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    /// Inserted pages are visible until evicted/removed; evictions are
    /// never phantom; len is consistent.
    pub fn check_basic(policy: &mut dyn EvictionPolicy) {
        assert!(policy.is_empty());
        for i in 0..10 {
            policy.insert(key(i));
            assert!(
                policy.contains(key(i)),
                "{} lost fresh insert",
                policy.name()
            );
        }
        assert_eq!(policy.len(), 10);
        let mut seen = HashSet::new();
        while let Some(victim) = policy.evict() {
            assert!(victim.page < 10, "{} phantom eviction", policy.name());
            assert!(seen.insert(victim), "{} double eviction", policy.name());
            assert!(!policy.contains(victim));
        }
        assert_eq!(seen.len(), 10);
        assert!(policy.is_empty());
    }

    /// remove() never yields the removed page from a later evict().
    pub fn check_remove(policy: &mut dyn EvictionPolicy) {
        for i in 0..8 {
            policy.insert(key(i));
        }
        policy.remove(key(3));
        policy.remove(key(7));
        assert!(!policy.contains(key(3)));
        let mut evicted = HashSet::new();
        while let Some(v) = policy.evict() {
            evicted.insert(v.page);
        }
        assert!(
            !evicted.contains(&3),
            "{} resurrected removed page",
            policy.name()
        );
        assert!(!evicted.contains(&7));
        assert_eq!(evicted.len(), 6);
    }

    /// Random mixed workload keeps policy bookkeeping consistent with a
    /// model set.
    pub fn check_random_model(policy: &mut dyn EvictionPolicy, seed: u64) {
        let mut model: HashSet<PageKey> = HashSet::new();
        let mut rng = Rng::new(seed);
        for step in 0..5000u64 {
            match rng.below(100) {
                0..=49 => {
                    let k = key(rng.below(200));
                    if !model.contains(&k) {
                        policy.insert(k);
                        model.insert(k);
                    } else {
                        policy.touch(k);
                    }
                }
                50..=69 => {
                    if let Some(v) = policy.evict() {
                        assert!(model.remove(&v), "phantom eviction at step {step}");
                    } else {
                        assert!(model.is_empty());
                    }
                }
                70..=79 => {
                    let k = key(rng.below(200));
                    policy.remove(k);
                    model.remove(&k);
                }
                _ => {
                    let k = key(rng.below(200));
                    assert_eq!(
                        policy.contains(k),
                        model.contains(&k),
                        "{} membership diverged at step {step}",
                        policy.name()
                    );
                }
            }
            assert_eq!(policy.len(), model.len(), "len diverged at step {step}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_buildable() {
        for kind in PolicyKind::ALL {
            let p = kind.build(128);
            assert_eq!(p.len(), 0);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn conformance_all_policies() {
        for kind in PolicyKind::ALL {
            conformance::check_basic(kind.build(64).as_mut());
            conformance::check_remove(kind.build(64).as_mut());
            conformance::check_random_model(kind.build(64).as_mut(), 0xC0FFEE);
        }
    }
}
