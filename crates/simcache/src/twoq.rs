//! 2Q replacement (Johnson & Shasha, VLDB '94).
//!
//! Pages enter a FIFO probation queue (A1in); only pages re-referenced
//! *after* falling out of probation — their identity remembered in the
//! A1out ghost queue — are promoted to the protected LRU main queue (Am).
//! This makes 2Q scan-resistant: a one-pass sequential read cannot flush
//! the hot set, unlike pure LRU.

use crate::olist::OrderedSet;
use crate::page::PageKey;
use crate::policy::EvictionPolicy;

/// The 2Q policy.
#[derive(Debug)]
pub struct TwoQ {
    a1in: OrderedSet,
    a1out: OrderedSet,
    am: OrderedSet,
    /// Probation queue target size (Kin), in pages.
    kin: u64,
    /// Ghost queue size bound (Kout), in pages.
    kout: u64,
}

impl TwoQ {
    /// Creates a 2Q policy tuned for a cache of `capacity_pages`, using
    /// the authors' recommended Kin = 25 % and Kout = 50 % of capacity.
    pub fn new(capacity_pages: u64) -> Self {
        let capacity = capacity_pages.max(4);
        TwoQ {
            a1in: OrderedSet::new(),
            a1out: OrderedSet::new(),
            am: OrderedSet::new(),
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
        }
    }

    fn trim_ghost(&mut self) {
        while self.a1out.len() as u64 > self.kout {
            self.a1out.pop_front();
        }
    }

    /// Number of pages in the probation queue (test visibility).
    pub fn probation_len(&self) -> usize {
        self.a1in.len()
    }

    /// Number of pages in the protected queue (test visibility).
    pub fn protected_len(&self) -> usize {
        self.am.len()
    }
}

impl EvictionPolicy for TwoQ {
    fn insert(&mut self, key: PageKey) {
        if self.am.contains(key) {
            self.am.push_back(key);
        } else if self.a1in.contains(key) {
            // Still on probation; FIFO order unchanged.
        } else if self.a1out.remove(key) {
            // Re-reference after probation: promote.
            self.am.push_back(key);
        } else {
            self.a1in.push_back(key);
        }
    }

    fn touch(&mut self, key: PageKey) {
        if self.am.contains(key) {
            self.am.push_back(key);
        }
        // Hits in A1in deliberately do not reorder (2Q rule).
    }

    fn evict(&mut self) -> Option<PageKey> {
        let victim = if self.a1in.len() as u64 > self.kin || self.am.is_empty() {
            let v = self.a1in.pop_front();
            if let Some(k) = v {
                self.a1out.push_back(k);
                self.trim_ghost();
            }
            v
        } else {
            self.am.pop_front()
        };
        victim.or_else(|| self.a1in.pop_front())
    }

    fn remove(&mut self, key: PageKey) {
        let _ = self.a1in.remove(key) || self.am.remove(key);
        self.a1out.remove(key);
    }

    fn contains(&self, key: PageKey) -> bool {
        self.a1in.contains(key) || self.am.contains(key)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn name(&self) -> &'static str {
        "2q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn fresh_pages_go_to_probation() {
        let mut q = TwoQ::new(16);
        q.insert(key(1));
        assert_eq!(q.probation_len(), 1);
        assert_eq!(q.protected_len(), 0);
    }

    #[test]
    fn ghost_hit_promotes() {
        let mut q = TwoQ::new(16); // kin = 4
        for i in 0..6 {
            q.insert(key(i));
        }
        // Probation over-full: evictions drain A1in into the ghost list.
        let v1 = q.evict().unwrap();
        assert_eq!(v1, key(0));
        // Key 0 is now a ghost; re-inserting it goes straight to Am.
        q.insert(key(0));
        assert_eq!(q.protected_len(), 1);
        assert!(q.contains(key(0)));
    }

    #[test]
    fn scan_resistance() {
        let mut q = TwoQ::new(16);
        // Build a hot set in Am via ghost promotion.
        for i in 0..8 {
            q.insert(key(i));
        }
        for _ in 0..8 {
            q.evict();
        }
        for i in 0..4 {
            q.insert(key(i)); // promoted from ghost to Am
        }
        assert_eq!(q.protected_len(), 4);
        // A long one-touch scan floods probation only.
        for i in 100..130 {
            q.insert(key(i));
            if q.len() > 16 {
                q.evict();
            }
        }
        // The hot set survived the scan.
        for i in 0..4 {
            assert!(q.contains(key(i)), "hot page {i} flushed by scan");
        }
    }

    #[test]
    fn evict_prefers_overfull_probation() {
        let mut q = TwoQ::new(8); // kin = 2
        q.insert(key(10));
        q.evict(); // 10 -> ghost
        q.insert(key(10)); // promote to Am
        for i in 0..3 {
            q.insert(key(i)); // probation now above kin
        }
        let v = q.evict().unwrap();
        assert_eq!(v, key(0), "should drain probation before touching Am");
        assert!(q.contains(key(10)));
    }
}
