//! Second-chance (CLOCK) replacement.
//!
//! The classic low-overhead LRU approximation: pages sit on a circular
//! list with a reference bit; the hand sweeps, clearing bits, and evicts
//! the first unreferenced page it meets.

use crate::page::PageKey;
use crate::policy::EvictionPolicy;
use rb_simcore::fnv::FnvHashMap;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: PageKey,
    referenced: bool,
    live: bool,
}

/// CLOCK replacement over a growable ring.
///
/// Dead slots (from `remove`) are skipped by the hand and compacted when
/// they exceed half the ring, keeping amortized costs O(1).
#[derive(Debug, Default)]
pub struct Clock {
    ring: Vec<Slot>,
    index: FnvHashMap<PageKey, usize>,
    hand: usize,
    dead: usize,
}

impl Clock {
    /// Creates an empty CLOCK tracker.
    pub fn new() -> Self {
        Clock::default()
    }

    fn compact(&mut self) {
        if self.dead * 2 <= self.ring.len() || self.ring.is_empty() {
            return;
        }
        let hand_key = self.ring.get(self.hand).map(|s| s.key);
        let live: Vec<Slot> = self.ring.iter().copied().filter(|s| s.live).collect();
        self.ring = live;
        self.dead = 0;
        self.index.clear();
        for (i, s) in self.ring.iter().enumerate() {
            self.index.insert(s.key, i);
        }
        // Re-aim the hand near where it was.
        self.hand = hand_key
            .and_then(|k| self.index.get(&k).copied())
            .unwrap_or(0);
        if self.ring.is_empty() {
            self.hand = 0;
        }
    }
}

impl EvictionPolicy for Clock {
    fn insert(&mut self, key: PageKey) {
        if let Some(&i) = self.index.get(&key) {
            self.ring[i].referenced = true;
            return;
        }
        self.index.insert(key, self.ring.len());
        self.ring.push(Slot {
            key,
            referenced: false,
            live: true,
        });
    }

    fn touch(&mut self, key: PageKey) {
        if let Some(&i) = self.index.get(&key) {
            self.ring[i].referenced = true;
        }
    }

    fn evict(&mut self) -> Option<PageKey> {
        if self.index.is_empty() {
            return None;
        }
        loop {
            if self.ring.is_empty() {
                return None;
            }
            let i = self.hand % self.ring.len();
            self.hand = (i + 1) % self.ring.len();
            let slot = &mut self.ring[i];
            if !slot.live {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
            } else {
                slot.live = false;
                self.dead += 1;
                let key = slot.key;
                self.index.remove(&key);
                self.compact();
                return Some(key);
            }
        }
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(i) = self.index.remove(&key) {
            self.ring[i].live = false;
            self.dead += 1;
            self.compact();
        }
    }

    fn contains(&self, key: PageKey) -> bool {
        self.index.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(0, i)
    }

    #[test]
    fn unreferenced_evicted_first() {
        let mut c = Clock::new();
        for i in 0..4 {
            c.insert(key(i));
        }
        // Reference 0 and 1; the hand should pass them once and evict 2.
        c.touch(key(0));
        c.touch(key(1));
        assert_eq!(c.evict(), Some(key(2)));
    }

    #[test]
    fn second_chance_granted_once() {
        let mut c = Clock::new();
        c.insert(key(0));
        c.touch(key(0));
        // First sweep clears the bit; second sweep evicts.
        assert_eq!(c.evict(), Some(key(0)));
        assert!(c.is_empty());
    }

    #[test]
    fn compaction_preserves_membership() {
        let mut c = Clock::new();
        for i in 0..100 {
            c.insert(key(i));
        }
        for i in 0..80 {
            c.remove(key(i));
        }
        assert_eq!(c.len(), 20);
        for i in 80..100 {
            assert!(c.contains(key(i)), "lost page {i} after compaction");
        }
        let mut n = 0;
        while c.evict().is_some() {
            n += 1;
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn insert_existing_sets_reference() {
        let mut c = Clock::new();
        c.insert(key(0));
        c.insert(key(1));
        c.insert(key(0)); // acts as a touch
        assert_eq!(c.len(), 2);
        assert_eq!(c.evict(), Some(key(1)));
    }
}
