//! The unified page cache: residency, replacement, readahead, writeback.
//!
//! This is the layer whose capacity — and whose few-megabyte run-to-run
//! wobble — produces the paper's Figure 1 cliff and 35 % RSD transition
//! spike. The cache is a pure bookkeeping machine: it answers which pages
//! hit, which must be read from media, which should be prefetched, and
//! which dirty pages an eviction pushes out. The storage stack translates
//! those page lists into device I/O and latency.

use crate::page::{CacheStats, FileId, PageKey};
use crate::policy::{EvictionPolicy, PolicyKind};
use crate::readahead::{Readahead, ReadaheadConfig};
use crate::writeback::{Writeback, WritebackConfig};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::time::Nanos;
use rb_simcore::units::PageNo;

/// Page cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Capacity in pages.
    pub capacity_pages: u64,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Readahead settings (applied per file).
    pub readahead: ReadaheadConfig,
    /// Writeback settings.
    pub writeback: WritebackConfig,
}

impl CacheConfig {
    /// The paper's testbed: 410 MiB of page cache (512 MiB RAM minus OS),
    /// LRU, default readahead and writeback.
    pub fn paper_testbed() -> Self {
        CacheConfig {
            capacity_pages: 410 * 256, // 410 MiB of 4 KiB pages
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::default(),
            writeback: WritebackConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Meta {
    prefetched: bool,
}

/// Result of a read access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Pages satisfied from the cache.
    pub hit_pages: u64,
    /// Demand pages that must be read from media.
    pub miss_pages: Vec<PageNo>,
    /// Readahead pages to fetch alongside (already inserted as resident).
    pub prefetch_pages: Vec<PageNo>,
    /// Dirty pages pushed out by the insertions; the caller must write
    /// them to media.
    pub writeback_pages: Vec<PageKey>,
}

impl ReadOutcome {
    /// True if every requested page hit.
    pub fn all_hit(&self) -> bool {
        self.miss_pages.is_empty()
    }
}

/// Result of a write access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Dirty pages pushed out by the insertions (write them to media).
    pub writeback_pages: Vec<PageKey>,
}

/// The simulated page cache.
///
/// # Examples
///
/// ```
/// use rb_simcache::cache::{CacheConfig, PageCache};
/// use rb_simcore::time::Nanos;
///
/// let mut cache = PageCache::new(CacheConfig::paper_testbed());
/// let cold = cache.read(1, 0, 2, 1024, Nanos::ZERO);
/// assert_eq!(cold.miss_pages, vec![0, 1]);
/// let warm = cache.read(1, 0, 2, 1024, Nanos::ZERO);
/// assert!(warm.all_hit());
/// ```
#[derive(Debug)]
pub struct PageCache {
    config: CacheConfig,
    policy: Box<dyn EvictionPolicy>,
    // Residency and readahead sit on the per-page hot path: FNV-keyed
    // maps (see `rb_simcore::fnv`) — a 16-byte key hash per probe
    // instead of SipHash.
    resident: FnvHashMap<PageKey, Meta>,
    // Per-file page index so fsync and invalidate_file touch only the
    // file's own pages instead of scanning the whole resident map
    // (fsync/unlink-heavy workloads spent most of their time in that
    // scan). Sets are unordered; every consumer either sorts
    // (`fsync`) or is order-insensitive (`invalidate_file`).
    by_file: FnvHashMap<FileId, rb_simcore::fnv::FnvHashSet<PageNo>>,
    readahead: FnvHashMap<FileId, Readahead>,
    writeback: Writeback,
    stats: CacheStats,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let policy = config.policy.build(config.capacity_pages);
        let writeback = Writeback::new(config.writeback);
        PageCache {
            config,
            policy,
            resident: FnvHashMap::default(),
            by_file: FnvHashMap::default(),
            readahead: FnvHashMap::default(),
            writeback,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.config.capacity_pages
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Number of dirty pages awaiting writeback.
    pub fn dirty_pages(&self) -> u64 {
        self.writeback.dirty_count() as u64
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Name of the active eviction policy (for attribution in reports).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Returns true if the page is resident.
    pub fn is_resident(&self, file: FileId, page: PageNo) -> bool {
        self.resident.contains_key(&PageKey::new(file, page))
    }

    /// Resizes the cache (models OS memory pressure / per-run jitter).
    ///
    /// Returns dirty pages evicted by a shrink; the caller must write
    /// them back.
    pub fn set_capacity_pages(&mut self, pages: u64) -> Vec<PageKey> {
        self.config.capacity_pages = pages;
        self.evict_to_capacity()
    }

    /// Drops a page from the residency maps (not the policy).
    fn forget_page(&mut self, key: PageKey) {
        self.resident.remove(&key);
        if let Some(pages) = self.by_file.get_mut(&key.file) {
            pages.remove(&key.page);
            if pages.is_empty() {
                self.by_file.remove(&key.file);
            }
        }
    }

    fn evict_to_capacity(&mut self) -> Vec<PageKey> {
        let mut dirty = Vec::new();
        while self.resident.len() as u64 > self.config.capacity_pages {
            match self.policy.evict() {
                Some(victim) => {
                    self.forget_page(victim);
                    // One probe: clearing reports whether it was dirty.
                    if self.writeback.take(victim) {
                        self.stats.evicted_dirty += 1;
                        dirty.push(victim);
                    } else {
                        self.stats.evicted_clean += 1;
                    }
                }
                None => break,
            }
        }
        dirty
    }

    fn insert_page(&mut self, key: PageKey, prefetched: bool) {
        if self.resident.contains_key(&key) {
            return;
        }
        self.insert_page_absent(key, prefetched);
    }

    /// [`PageCache::insert_page`] when the caller has already proven the
    /// page is not resident (saves the duplicate residency probe on the
    /// miss-insert hot path).
    fn insert_page_absent(&mut self, key: PageKey, prefetched: bool) {
        debug_assert!(!self.resident.contains_key(&key));
        self.resident.insert(key, Meta { prefetched });
        self.by_file.entry(key.file).or_default().insert(key.page);
        self.policy.insert(key);
        self.stats.insertions += 1;
        if prefetched {
            self.stats.prefetched += 1;
        }
    }

    /// Performs a read of `count` pages of `file` starting at `first`.
    ///
    /// `file_pages` bounds readahead at end of file. The returned outcome
    /// lists demand misses and prefetch pages; both are inserted as
    /// resident (the caller is expected to fetch them from media before
    /// virtual time advances past the access).
    pub fn read(
        &mut self,
        file: FileId,
        first: PageNo,
        count: u64,
        file_pages: u64,
        _now: Nanos,
    ) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        for page in first..first + count {
            let key = PageKey::new(file, page);
            if let Some(meta) = self.resident.get_mut(&key) {
                self.stats.hits += 1;
                out.hit_pages += 1;
                if meta.prefetched {
                    meta.prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                self.policy.touch(key);
            } else {
                self.stats.misses += 1;
                out.miss_pages.push(page);
                self.insert_page_absent(key, false);
            }
        }
        // Readahead beyond the request.
        let window = self
            .readahead
            .entry(file)
            .or_insert_with(|| Readahead::new(self.config.readahead))
            .on_read(first, count);
        let ra_start = first + count;
        let ra_end = (ra_start + window).min(file_pages);
        for page in ra_start..ra_end {
            let key = PageKey::new(file, page);
            if !self.resident.contains_key(&key) {
                out.prefetch_pages.push(page);
                self.insert_page_absent(key, true);
            }
        }
        out.writeback_pages = self.evict_to_capacity();
        out
    }

    /// Inserts a single clean page (file-system cluster fetch), returning
    /// any dirty pages evicted to make room.
    pub fn insert_clean(&mut self, file: FileId, page: PageNo) -> Vec<PageKey> {
        self.insert_page(PageKey::new(file, page), false);
        self.evict_to_capacity()
    }

    /// Performs a write of `count` pages of `file` starting at `first`.
    ///
    /// Pages are dirtied in place (no read-modify-write is modelled for
    /// partial pages; the stack issues whole-page writes).
    pub fn write(&mut self, file: FileId, first: PageNo, count: u64, now: Nanos) -> WriteOutcome {
        for page in first..first + count {
            let key = PageKey::new(file, page);
            if self.resident.contains_key(&key) {
                self.policy.touch(key);
            } else {
                self.insert_page_absent(key, false);
            }
            self.writeback.mark_dirty(key, now);
        }
        WriteOutcome {
            writeback_pages: self.evict_to_capacity(),
        }
    }

    /// Collects dirty pages due for background writeback at `now`.
    ///
    /// The pages remain resident (clean) after this call; the caller
    /// performs the media writes.
    pub fn take_writeback_due(&mut self, now: Nanos) -> Vec<PageKey> {
        let due = self.writeback.take_due(now, self.config.capacity_pages);
        self.stats.writeback_flushed += due.len() as u64;
        due
    }

    /// Flushes every dirty page of `file` (fsync). Pages stay resident.
    pub fn fsync(&mut self, file: FileId) -> Vec<PageKey> {
        let mine: Vec<PageKey> = match self.by_file.get(&file) {
            Some(pages) => pages
                .iter()
                .map(|&p| PageKey::new(file, p))
                .filter(|k| self.writeback.is_dirty(*k))
                .collect(),
            None => Vec::new(),
        };
        for k in &mine {
            self.writeback.clear(*k);
        }
        self.stats.writeback_flushed += mine.len() as u64;
        let mut sorted = mine;
        sorted.sort_unstable();
        sorted
    }

    /// Flushes every dirty page in the cache (sync / unmount).
    pub fn sync_all(&mut self) -> Vec<PageKey> {
        self.writeback.drain_all()
    }

    /// Drops one page of `file` (a media read that never delivered its
    /// data — the inserted page must not masquerade as a future hit).
    pub fn invalidate_page(&mut self, file: FileId, page: PageNo) {
        let k = PageKey::new(file, page);
        self.forget_page(k);
        self.policy.remove(k);
        self.writeback.clear(k);
    }

    /// Drops every page of `file` (unlink / truncate). Dirty pages are
    /// discarded, as POSIX unlink discards un-synced data.
    pub fn invalidate_file(&mut self, file: FileId) {
        if let Some(pages) = self.by_file.remove(&file) {
            for p in pages {
                let k = PageKey::new(file, p);
                self.resident.remove(&k);
                self.policy.remove(k);
                self.writeback.clear(k);
            }
        }
        self.readahead.remove(&file);
    }

    /// Drops every page in the cache (drop_caches).
    pub fn invalidate_all(&mut self) {
        let keys: Vec<PageKey> = self.resident.keys().copied().collect();
        for k in keys {
            self.resident.remove(&k);
            self.policy.remove(k);
            self.writeback.clear(k);
        }
        self.by_file.clear();
        self.readahead.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: u64) -> PageCache {
        PageCache::new(CacheConfig {
            capacity_pages: pages,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig::default(),
        })
    }

    #[test]
    fn cold_then_warm() {
        let mut c = cache(100);
        let cold = c.read(1, 0, 4, 1000, Nanos::ZERO);
        assert_eq!(cold.miss_pages, vec![0, 1, 2, 3]);
        assert_eq!(cold.hit_pages, 0);
        let warm = c.read(1, 0, 4, 1000, Nanos::ZERO);
        assert!(warm.all_hit());
        assert_eq!(warm.hit_pages, 4);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = cache(10);
        for p in 0..50 {
            c.read(1, p, 1, 1000, Nanos::ZERO);
            assert!(c.resident_pages() <= 10, "over capacity at page {p}");
        }
        assert_eq!(c.stats().evicted_clean, 40);
    }

    #[test]
    fn lru_steady_state_hit_ratio_matches_theory() {
        // Uniform random over N pages with C-page LRU: hit ratio -> C/N.
        use rb_simcore::rng::Rng;
        let (cap, n) = (200u64, 800u64);
        let mut c = cache(cap);
        let mut rng = Rng::new(99);
        // Warm up.
        for _ in 0..20_000 {
            c.read(1, rng.below(n), 1, n, Nanos::ZERO);
        }
        let before = c.stats();
        for _ in 0..50_000 {
            c.read(1, rng.below(n), 1, n, Nanos::ZERO);
        }
        let after = c.stats();
        let hits = (after.hits - before.hits) as f64;
        let total = hits + (after.misses - before.misses) as f64;
        let ratio = hits / total;
        let expect = cap as f64 / n as f64;
        assert!(
            (ratio - expect).abs() < 0.02,
            "hit ratio {ratio:.3} vs theory {expect:.3}"
        );
    }

    #[test]
    fn readahead_inserts_and_counts_hits() {
        let mut c = PageCache::new(CacheConfig {
            capacity_pages: 100,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::default(),
            writeback: WritebackConfig::default(),
        });
        // Build a sequential stream.
        c.read(1, 0, 2, 1000, Nanos::ZERO);
        let second = c.read(1, 2, 2, 1000, Nanos::ZERO);
        assert_eq!(second.prefetch_pages, vec![4, 5, 6, 7]);
        // The prefetched pages now hit, and accuracy is recorded.
        let third = c.read(1, 4, 2, 1000, Nanos::ZERO);
        assert!(third.all_hit());
        assert_eq!(c.stats().prefetch_hits, 2);
        assert!(c.stats().prefetch_accuracy() > 0.0);
    }

    #[test]
    fn readahead_respects_eof() {
        let mut c = PageCache::new(CacheConfig {
            capacity_pages: 100,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::default(),
            writeback: WritebackConfig::default(),
        });
        c.read(1, 0, 2, 5, Nanos::ZERO);
        let out = c.read(1, 2, 2, 5, Nanos::ZERO);
        // Only page 4 exists past the request.
        assert_eq!(out.prefetch_pages, vec![4]);
    }

    #[test]
    fn writes_dirty_and_fsync_cleans() {
        let mut c = cache(100);
        c.write(3, 0, 4, Nanos::from_secs(1));
        assert_eq!(c.dirty_pages(), 4);
        let flushed = c.fsync(3);
        assert_eq!(flushed.len(), 4);
        assert_eq!(c.dirty_pages(), 0);
        // Pages remain resident after fsync.
        assert!(c.is_resident(3, 0));
        // Second fsync flushes nothing.
        assert!(c.fsync(3).is_empty());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = cache(4);
        c.write(1, 0, 4, Nanos::ZERO);
        // Reading 4 new pages evicts the dirty ones.
        let out = c.read(1, 100, 4, 1000, Nanos::ZERO);
        assert_eq!(out.writeback_pages.len(), 4);
        assert_eq!(c.stats().evicted_dirty, 4);
        assert_eq!(c.dirty_pages(), 0);
    }

    #[test]
    fn invalidate_file_is_selective() {
        let mut c = cache(100);
        c.read(1, 0, 4, 1000, Nanos::ZERO);
        c.read(2, 0, 4, 1000, Nanos::ZERO);
        c.write(1, 10, 1, Nanos::ZERO);
        c.invalidate_file(1);
        assert!(!c.is_resident(1, 0));
        assert!(c.is_resident(2, 0));
        assert_eq!(c.dirty_pages(), 0);
        assert_eq!(c.resident_pages(), 4);
    }

    #[test]
    fn shrink_capacity_evicts() {
        let mut c = cache(100);
        for p in 0..50 {
            c.write(1, p, 1, Nanos::ZERO);
        }
        let dirty = c.set_capacity_pages(20);
        assert_eq!(c.resident_pages(), 20);
        assert_eq!(dirty.len(), 30, "all evicted pages were dirty");
    }

    #[test]
    fn background_writeback_under_pressure() {
        let mut c = PageCache::new(CacheConfig {
            capacity_pages: 100,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig {
                dirty_ratio: 0.1,
                ..Default::default()
            },
        });
        for p in 0..30 {
            c.write(1, p, 1, Nanos::from_secs(1));
        }
        // 30 dirty > 10 % of 100: flusher kicks in.
        let due = c.take_writeback_due(Nanos::from_secs(2));
        assert!(!due.is_empty());
        assert!(c.dirty_pages() < 30);
    }

    #[test]
    fn invalidate_all_resets() {
        let mut c = cache(100);
        c.read(1, 0, 10, 1000, Nanos::ZERO);
        c.write(2, 0, 5, Nanos::ZERO);
        c.invalidate_all();
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.dirty_pages(), 0);
    }

    #[test]
    fn works_with_every_policy() {
        for kind in PolicyKind::ALL {
            let mut c = PageCache::new(CacheConfig {
                capacity_pages: 16,
                policy: kind,
                readahead: ReadaheadConfig::disabled(),
                writeback: WritebackConfig::default(),
            });
            use rb_simcore::rng::Rng;
            let mut rng = Rng::new(5);
            for _ in 0..2000 {
                c.read(1, rng.below(64), 2, 64, Nanos::ZERO);
                assert!(
                    c.resident_pages() <= 16,
                    "{} overflowed capacity",
                    kind.name()
                );
            }
            assert!(c.stats().hit_ratio() > 0.05, "{} never hits", kind.name());
        }
    }
}
