//! Ablation benches for the design choices DESIGN.md calls out:
//! replacement policy, I/O scheduler, allocator, and readahead — each
//! swept while everything else is held fixed. Criterion reports the
//! simulation cost; the printed side-channel metrics (hit ratios, drain
//! times) are the experimental result.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_simcache::cache::{CacheConfig, PageCache};
use rb_simcache::policy::PolicyKind;
use rb_simcache::readahead::ReadaheadConfig;
use rb_simcache::writeback::WritebackConfig;
use rb_simcore::dist::Zipf;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simdisk::device::{BlockDevice, IoRequest};
use rb_simdisk::hdd::{Hdd, HddConfig};
use rb_simdisk::sched::{IoQueue, SchedPolicy};
use rb_simfs::alloc::{BitmapAllocator, ExtentAllocator};

/// Replacement-policy ablation: zipf-skewed reads, cache at 25 % of the
/// working set. Prints the achieved hit ratio per policy once.
fn bench_policy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/policy_zipf");
    for kind in PolicyKind::ALL {
        // Report hit ratio out-of-band (once per policy).
        let mut cache = PageCache::new(CacheConfig {
            capacity_pages: 2048,
            policy: kind,
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig::default(),
        });
        let zipf = Zipf::new(8192, 0.9);
        let mut rng = Rng::new(7);
        for _ in 0..100_000 {
            cache.read(1, zipf.sample(&mut rng) as u64, 1, 8192, Nanos::ZERO);
        }
        eprintln!(
            "ablation/policy_zipf/{}: hit ratio {:.3}",
            kind.name(),
            cache.stats().hit_ratio()
        );
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let page = zipf.sample(&mut rng) as u64;
                black_box(cache.read(1, page, 1, 8192, Nanos::ZERO).hit_pages)
            });
        });
    }
    group.finish();
}

/// Scheduler ablation: drain a 64-request scattered batch; prints the
/// virtual completion time per policy.
fn bench_scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/scheduler");
    group.sample_size(20);
    let policies = [
        ("noop", SchedPolicy::Noop),
        ("scan", SchedPolicy::Scan),
        ("cscan", SchedPolicy::CScan),
        ("deadline", SchedPolicy::Deadline { expire: Nanos::from_millis(200) }),
    ];
    for (name, policy) in policies {
        // Report the batch completion time once.
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        let cap = disk.capacity_blocks();
        let mut q = IoQueue::new(policy);
        let mut rng = Rng::new(8);
        for _ in 0..64 {
            q.push(IoRequest::read(rng.below(cap - 2), 2), Nanos::ZERO);
        }
        let done = q.drain(&mut disk, Nanos::ZERO);
        eprintln!(
            "ablation/scheduler/{name}: 64-request batch drains in {}",
            done.last().unwrap().finished
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
                let mut q = IoQueue::new(policy);
                let mut rng = Rng::new(8);
                for _ in 0..64 {
                    q.push(IoRequest::read(rng.below(cap - 2), 2), Nanos::ZERO);
                }
                black_box(q.drain(&mut disk, Nanos::ZERO).len())
            });
        });
    }
    group.finish();
}

/// Allocator ablation: bitmap first-fit vs extent best-fit under churn;
/// prints resulting fragmentation once.
fn bench_allocator_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/allocator");
    group.sample_size(20);
    group.bench_function("bitmap_churn", |b| {
        b.iter(|| {
            let mut a = BitmapAllocator::new(65_536, 8_192);
            let mut rng = Rng::new(9);
            let mut live = Vec::new();
            for _ in 0..400 {
                if rng.chance(0.6) || live.is_empty() {
                    if let Ok(runs) = a.alloc(rng.range(8, 128), rng.below(65_536)) {
                        live.extend(runs);
                    }
                } else {
                    let idx = rng.below(live.len() as u64) as usize;
                    let run = live.swap_remove(idx);
                    a.free(run).unwrap();
                }
            }
            black_box(a.fragmentation(64))
        });
    });
    group.bench_function("extent_churn", |b| {
        b.iter(|| {
            let mut a = ExtentAllocator::new(65_536);
            let mut rng = Rng::new(9);
            let mut live = Vec::new();
            for _ in 0..400 {
                if rng.chance(0.6) || live.is_empty() {
                    if let Ok(runs) = a.alloc(rng.range(8, 128), rng.below(65_536)) {
                        live.extend(runs);
                    }
                } else {
                    let idx = rng.below(live.len() as u64) as usize;
                    let run = live.swap_remove(idx);
                    a.free(run).unwrap();
                }
            }
            black_box(a.free_extents())
        });
    });
    group.finish();
}

/// Readahead ablation: sequential stream with and without readahead;
/// prints the virtual time per MiB once.
fn bench_readahead_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/readahead");
    group.sample_size(10);
    for (name, ra) in [
        ("on", ReadaheadConfig::default()),
        ("off", ReadaheadConfig::disabled()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                use rb_core::target::Target;
                let mut t = rb_core::testbed::Testbed {
                    fs: rb_core::testbed::FsKind::Ext2,
                    device: rb_simcore::units::Bytes::mib(256),
                    cache: rb_simcore::units::Bytes::mib(64),
                    policy: PolicyKind::Lru,
                    readahead: ra,
                    seed: 0,
                }
                .build();
                t.create("/f").unwrap();
                let fd = t.open("/f").unwrap();
                t.set_size(fd, rb_simcore::units::Bytes::mib(32)).unwrap();
                t.drop_caches();
                let mut off = rb_simcore::units::Bytes::ZERO;
                while off < rb_simcore::units::Bytes::mib(32) {
                    t.read(fd, off, rb_simcore::units::Bytes::kib(8)).unwrap();
                    off += rb_simcore::units::Bytes::kib(8);
                }
                black_box(t.now())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_ablation,
    bench_scheduler_ablation,
    bench_allocator_ablation,
    bench_readahead_ablation
);
criterion_main!(benches);
