//! Microbenchmarks of the simulation substrate: these guard the
//! simulator's own performance (a slow simulator caps experiment scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_simcache::cache::{CacheConfig, PageCache};
use rb_simcache::policy::PolicyKind;
use rb_simcache::readahead::ReadaheadConfig;
use rb_simcache::writeback::WritebackConfig;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simdisk::device::{BlockDevice, IoRequest};
use rb_simdisk::hdd::{Hdd, HddConfig};
use rb_stats::histogram::Log2Histogram;

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    c.bench_function("rng/lognormal", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(rng.lognormal(4096.0, 0.3)));
    });
}

fn bench_hdd(c: &mut Criterion) {
    c.bench_function("hdd/random_read_8k", |b| {
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        let cap = disk.capacity_blocks();
        let mut rng = Rng::new(2);
        let mut now = Nanos::ZERO;
        b.iter(|| {
            let block = rng.below(cap - 2);
            let lat = disk.service(&IoRequest::read(block, 2), now);
            now += lat;
            black_box(lat)
        });
    });
    c.bench_function("hdd/sequential_read_64k", |b| {
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        let mut now = Nanos::ZERO;
        let mut block = 0u64;
        b.iter(|| {
            let lat = disk.service(&IoRequest::read(block, 16), now);
            block = (block + 16) % (disk.capacity_blocks() - 16);
            now += lat;
            black_box(lat)
        });
    });
}

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/read_mixed");
    for kind in PolicyKind::ALL {
        group.bench_function(kind.name(), |b| {
            let mut cache = PageCache::new(CacheConfig {
                capacity_pages: 4096,
                policy: kind,
                readahead: ReadaheadConfig::disabled(),
                writeback: WritebackConfig::default(),
            });
            let mut rng = Rng::new(3);
            b.iter(|| {
                let page = rng.below(8192);
                black_box(cache.read(1, page, 2, 8192, Nanos::ZERO).hit_pages)
            });
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("stats/histogram_record", |b| {
        let mut h = Log2Histogram::new();
        let mut rng = Rng::new(4);
        b.iter(|| {
            h.record(Nanos::from_nanos(rng.below(100_000_000)));
            black_box(h.total())
        });
    });
}

criterion_group!(benches, bench_rng, bench_hdd, bench_cache_policies, bench_histogram);
criterion_main!(benches);
