//! Figure-regeneration benches: every paper artifact's driver runs here
//! at reduced scale, so `cargo bench` exercises (and times) the complete
//! reproduction pipeline — E1, E1z, E2, E3, E4, T1 and the nano suite
//! from DESIGN.md's experiment index.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rb_core::figures::{
    fig1, fig1_zoom, fig2, fig3, fig4, Fig1Config, Fig1ZoomConfig, Fig2Config, Fig3Config,
    Fig4Config,
};
use rb_core::nano::{run_suite, NanoConfig};
use rb_core::runner::{Protocol, RunPlan};
use rb_core::survey::{render_table1, table1};
use rb_core::testbed::FsKind;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

/// A trimmed Figure 1: two sizes (one per regime), one run each.
fn tiny_fig1_config() -> Fig1Config {
    let mut plan = RunPlan::paper_fig1(0);
    plan.protocol = Protocol::FixedRuns(1);
    plan.duration = Nanos::from_secs(20);
    plan.tail_windows = 1;
    Fig1Config {
        sizes: vec![Bytes::mib(64), Bytes::mib(768)],
        plan,
        device: Bytes::gib(1),
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_two_points", |b| {
        let cfg = tiny_fig1_config();
        b.iter(|| black_box(fig1(&cfg).unwrap().points.len()));
    });
    group.bench_function("fig1zoom_three_points", |b| {
        let mut cfg = Fig1ZoomConfig::quick();
        cfg.plan.protocol = Protocol::FixedRuns(1);
        cfg.plan.duration = Nanos::from_secs(20);
        cfg.plan.tail_windows = 1;
        cfg.step = Bytes::mib(32);
        b.iter(|| black_box(fig1_zoom(&cfg).unwrap().points.len()));
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig2_warmup_race", |b| {
        let cfg = Fig2Config {
            file_size: Bytes::mib(64),
            duration: Nanos::from_secs(120),
            window: Nanos::from_secs(10),
            seed: 0,
            device: Bytes::mib(512),
            systems: FsKind::ALL.to_vec(),
        };
        b.iter(|| black_box(fig2(&cfg).unwrap().curves.len()));
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_histograms", |b| {
        let cfg = Fig3Config {
            sizes: vec![Bytes::mib(32), Bytes::mib(820)],
            warmup: Nanos::from_secs(10),
            measure: Nanos::from_secs(20),
            seed: 0,
        };
        b.iter(|| black_box(fig3(&cfg).unwrap().histograms.len()));
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_histogram_timeline", |b| {
        let cfg = Fig4Config {
            file_size: Bytes::mib(48),
            duration: Nanos::from_secs(60),
            window: Nanos::from_secs(10),
            seed: 0,
        };
        b.iter(|| black_box(fig4(&cfg).unwrap().windows.len()));
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("figures/table1_render", |b| {
        let rows = table1();
        b.iter(|| black_box(render_table1(&rows).len()));
    });
}

fn bench_nano(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("nano_suite_ext2", |b| {
        let cfg = NanoConfig {
            device: Bytes::gib(2),
            seed: 0,
            duration: Nanos::from_secs(5),
            working_file: Bytes::mib(48),
        };
        b.iter(|| black_box(run_suite(FsKind::Ext2, &cfg).unwrap().results.len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_table1,
    bench_nano
);
criterion_main!(benches);
