//! campaign: the result-store scale proof on a ~2k-cell grid.
//!
//! The store's promise is that campaign scale is bounded by disk, not
//! memory, and that nothing is ever paid for twice. This bin drives a
//! five-axis grid (personality × fs × cache × processes × arrival,
//! ~1.8k cells at full size) through `run_campaign_with` streaming to
//! a content-addressed store, and self-validates the three claims that
//! make million-cell grids practical:
//!
//! 1. **Conservation** — every expanded cell is accounted for:
//!    `expanded = cached + executed` on each pass (a failed cell aborts
//!    the campaign with an error instead of vanishing), with
//!    `executed = all` on the cold pass and `cached = all` on the warm.
//! 2. **Peak-RSS flatness** — the process high-water mark after the
//!    full grid must sit within a fixed budget of the mark after a
//!    small slice of the same grid: per-cell recordings stream to disk
//!    instead of accumulating, so memory is O(jobs) plus the report's
//!    compact rows, not O(cells) of recordings.
//! 3. **Byte-identity** — the warm report (all cells from cache)
//!    renders the same CSV bytes as the cold one (all cells live).
//!
//! Usage:
//!   cargo run -p rb-bench --release --bin campaign [-- --quick]
//!       [--jobs N] [--store DIR] [--keep true]
//!
//! `--quick` shrinks the grid (~200 cells) for CI smoke. The store
//! defaults to a per-run temp directory, removed afterwards unless
//! `--keep true`.

use rb_core::campaign::{
    run_campaign_with, CampaignOptions, CampaignRun, Personality, StoreOptions, SweepSpec,
};
use rb_core::runner::{Protocol, RunPlan};
use rb_core::sched::Arrival;
use rb_core::testbed::FsKind;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use std::path::PathBuf;
use std::time::Instant;

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    args.iter()
        .position(|a| *a == long)
        .map(|i| args.get(i + 1).cloned().unwrap_or_default())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
        })
}

/// Peak resident set size in bytes (`VmHWM`), if the kernel exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Peak-RSS growth budget between the small slice and the full grid.
/// The report itself grows by a few hundred bytes per cell (~2k cells
/// is well under a megabyte of rows); anything past this budget means
/// per-cell state is accumulating again.
const RSS_BUDGET_BYTES: u64 = 32 * 1024 * 1024;

/// The five-axis grid. `slice` shrinks every axis to a prefix, so the
/// small grid is a genuine subset of the full one.
fn grid(name: &str, quick: bool, slice: bool) -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(1);
    plan.duration = Nanos::from_millis(400);
    plan.window = Nanos::from_millis(200);
    let mut personalities = vec![
        Personality::RandomRead,
        Personality::SequentialRead,
        Personality::Varmail,
        Personality::Fileserver,
        Personality::MetadataOnly,
    ];
    let mut filesystems = vec![FsKind::Ext2, FsKind::Ext3, FsKind::Xfs];
    let mut cache_capacities: Vec<Bytes> = [4u64, 8, 16, 32, 64]
        .iter()
        .map(|&m| Bytes::mib(m))
        .collect();
    let mut processes = vec![1, 2, 4, 6];
    let mut arrivals = vec![Arrival::Closed];
    arrivals.extend(Arrival::parse_axis("poisson:250..4000x2").expect("ladder parses"));
    if quick {
        personalities.truncate(2);
        cache_capacities.truncate(2);
        processes.truncate(2);
        arrivals.truncate(3);
    }
    if slice {
        personalities.truncate(1);
        filesystems.truncate(2);
        cache_capacities.truncate(2);
        processes.truncate(2);
        arrivals.truncate(2);
    }
    SweepSpec {
        name: name.into(),
        personalities,
        file_sizes: vec![Bytes::mib(8)],
        file_counts: vec![25],
        filesystems,
        cache_capacities,
        processes,
        arrivals,
        plan,
        device: Bytes::mib(512),
        ..SweepSpec::default()
    }
}

/// Asserts the conservation identity on one pass and narrates it.
fn check_conservation(label: &str, run: &CampaignRun) {
    let s = run.stats;
    assert_eq!(
        s.expanded,
        s.cached + s.executed,
        "{label}: conservation broken"
    );
    println!(
        "conservation [{label}]: expanded({}) = cached({}) + executed({}) + failed(0)  OK",
        s.expanded, s.cached, s.executed
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    let jobs: usize = match flag("jobs") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --jobs needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
    };
    let keep = flag("keep").is_some_and(|v| v == "true");
    let dir: PathBuf = match flag("store") {
        Some(d) => d.into(),
        None => std::env::temp_dir().join(format!("rb-campaign-bench-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CampaignOptions {
        store: Some(StoreOptions::at(&dir)),
    };

    // Phase 1: a small slice of the grid, to set the RSS reference
    // point *after* the engine, allocator and store machinery have all
    // been touched once.
    let slice = grid("campaign-slice", quick, true);
    let t0 = Instant::now();
    let small = run_campaign_with(&slice, jobs, &opts).expect("slice campaign");
    let small_wall = t0.elapsed();
    let rss_small = peak_rss_bytes();
    check_conservation("slice-cold", &small);
    println!(
        "slice: {} cells in {:.1}s on {jobs} worker(s), peak rss {}",
        small.stats.expanded,
        small_wall.as_secs_f64(),
        rss_small.map_or("n/a".into(), |b| format!("{:.1} MiB", mib(b))),
    );

    // Phase 2: the full grid, cold (slice cells hit the shared store).
    let full = grid("campaign-full", quick, false);
    let t1 = Instant::now();
    let cold = run_campaign_with(&full, jobs, &opts).expect("cold campaign");
    let cold_wall = t1.elapsed();
    let rss_cold = peak_rss_bytes();
    check_conservation("full-cold", &cold);
    assert_eq!(
        cold.stats.cached, small.stats.expanded,
        "the slice is a subset of the full grid, so exactly its cells are warm"
    );
    println!(
        "cold:  {} cells ({} cached) in {:.1}s ({:.0} cells/s), peak rss {}",
        cold.stats.expanded,
        cold.stats.cached,
        cold_wall.as_secs_f64(),
        cold.stats.expanded as f64 / cold_wall.as_secs_f64(),
        rss_cold.map_or("n/a".into(), |b| format!("{:.1} MiB", mib(b))),
    );

    // Phase 3: the full grid, warm — zero executions.
    let t2 = Instant::now();
    let warm = run_campaign_with(&full, jobs, &opts).expect("warm campaign");
    let warm_wall = t2.elapsed();
    check_conservation("full-warm", &warm);
    assert_eq!(warm.stats.executed, 0, "warm rerun must execute 0 cells");
    println!(
        "warm:  {} cells in {:.1}s ({:.0} cells/s)",
        warm.stats.expanded,
        warm_wall.as_secs_f64(),
        warm.stats.expanded as f64 / warm_wall.as_secs_f64(),
    );

    // Byte-identity across sources.
    assert_eq!(
        cold.report.to_csv(),
        warm.report.to_csv(),
        "warm report must be byte-identical to the cold one"
    );
    println!("byte-identity: cold csv == warm csv  OK");

    // Peak-RSS flatness: a grid ~15x the slice may grow the high-water
    // mark only by the fixed budget.
    if let (Some(lo), Some(hi)) = (rss_small, rss_cold) {
        let delta = hi.saturating_sub(lo);
        assert!(
            delta <= RSS_BUDGET_BYTES,
            "peak rss grew {:.1} MiB from the {}-cell slice to the {}-cell grid \
             (budget {:.0} MiB): per-cell state is accumulating",
            mib(delta),
            small.stats.expanded,
            cold.stats.expanded,
            mib(RSS_BUDGET_BYTES),
        );
        println!(
            "rss flatness: {:.1} MiB -> {:.1} MiB (delta {:.1} MiB <= {:.0} MiB)  OK",
            mib(lo),
            mib(hi),
            mib(delta),
            mib(RSS_BUDGET_BYTES),
        );
    } else {
        println!("rss flatness: /proc/self/status unavailable, skipped");
    }

    if keep {
        println!("store kept at {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("campaign bench: all validations passed");
}
