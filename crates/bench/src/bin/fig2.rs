//! Regenerates paper Figure 2: Ext2/Ext3/XFS throughput over time while
//! a 410 MB file warms into the page cache (cold start, 10 s sampling).
//!
//! Usage: `cargo run -p rb-bench --release --bin fig2 [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::figures::{fig2, render_fig2, Fig2Config};
use rb_core::report::to_gnuplot;

fn main() {
    let config = if quick_requested() {
        Fig2Config::quick()
    } else {
        Fig2Config::paper()
    };
    eprintln!(
        "fig2: {} file, {}s run per file system...",
        config.file_size,
        config.duration.as_secs()
    );
    let data = fig2(&config).expect("fig2 experiment");
    print!("{}", render_fig2(&data));

    // Divergence: the paper's point is that systems differ only in the
    // transition. Print where the max ratio lands.
    let div = data.divergence_series();
    if let Some((t, ratio)) = div
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        println!("max between-system ratio {ratio:.1}x at t={t:.0}s");
    }
    if let (Some(first), Some(last)) = (div.first(), div.last()) {
        println!(
            "ratio at start {:.2}x, at end {:.2}x (systems converge at both extremes)",
            first.1, last.1
        );
    }

    let series: Vec<(&str, &[(f64, f64)])> = data
        .curves
        .iter()
        .map(|c| (c.fs, c.series.as_slice()))
        .collect();
    write_results("fig2.dat", &to_gnuplot("seconds", &series));
}
