//! Regenerates paper Table 1: the benchmark-usage survey (1999–2007 vs
//! 2009–2010) with the dimension-coverage markers.
//!
//! Usage: `cargo run -p rb-bench --bin table1`

use rb_bench::write_results;
use rb_core::dimensions::{Coverage, CoverageProfile, Dimension};
use rb_core::report::to_csv;
use rb_core::survey::{adhoc_share_2009_2010, render_table1, table1, total_uses, SCOPE};

fn main() {
    let rows = table1();
    print!("{}", render_table1(&rows));
    println!(
        "\nSurvey scope: {} papers ({} from 2010, {} from 2009), {} eliminated",
        SCOPE.papers_reviewed, SCOPE.from_2010, SCOPE.from_2009, SCOPE.eliminated
    );
    println!(
        "Total benchmark uses: {} (1999-2007), {} (2009-2010)",
        total_uses(&rows, false),
        total_uses(&rows, true)
    );
    println!(
        "Ad-hoc share of 2009-2010 uses: {:.0}% — \"by far, the most common choice\"",
        adhoc_share_2009_2010(&rows) * 100.0
    );

    // The campaign-style aggregate: combining every surveyed benchmark
    // still isolates almost nothing — the paper's argument for sweeps.
    let union = rows
        .iter()
        .fold(CoverageProfile::EMPTY, |acc, r| acc.union(&r.profile));
    let cov: Vec<String> = Dimension::ALL
        .iter()
        .map(|&d| format!("{}:{}", d.label(), union.get(d).glyph().trim()))
        .collect();
    println!(
        "Union coverage of all surveyed benchmarks: {}",
        cov.join("  ")
    );
    println!(
        "Dimensions isolated by at least one benchmark: {} of {}",
        Dimension::ALL
            .iter()
            .filter(|&&d| union.get(d) == Coverage::Isolates)
            .count(),
        Dimension::ALL.len()
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.to_string()];
            row.extend(
                Dimension::ALL
                    .iter()
                    .map(|&d| r.profile.get(d).glyph().trim().to_string()),
            );
            row.push(r.used_1999_2007.to_string());
            row.push(r.used_2009_2010.to_string());
            row
        })
        .collect();
    write_results(
        "table1.csv",
        &to_csv(
            &[
                "benchmark",
                "io",
                "ondisk",
                "caching",
                "metadata",
                "scaling",
                "1999-2007",
                "2009-2010",
            ],
            &csv_rows,
        ),
    );
}
