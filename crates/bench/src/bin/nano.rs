//! Runs the Section 4 nano-benchmark suite against all three simulated
//! file systems and prints the multi-dimensional comparison the paper
//! asks for instead of single numbers.
//!
//! With a repetition protocol the suite runs repeatedly per file system
//! and every metric is reported as a distribution (mean ± bootstrap CI,
//! cross-run RSD) with a convergence verdict.
//!
//! Usage: `cargo run -p rb-bench --release --bin nano [-- --quick]
//!         [--protocol fixed|adaptive] [--runs N] [--ci 2%]
//!         [--min-runs 5] [--max-runs 30]`

use rb_bench::{protocol_requested, quick_requested, write_results};
use rb_core::nano::{
    render_protocol_report, render_report, run_suite, run_suite_protocol, NanoConfig,
};
use rb_core::report::to_csv;
use rb_core::testbed::FsKind;

fn main() {
    let config = if quick_requested() {
        NanoConfig::quick()
    } else {
        NanoConfig::default()
    };
    let mut csv_rows = Vec::new();
    match protocol_requested() {
        // No protocol requested: the classic single-run suite.
        None => {
            for kind in FsKind::ALL {
                eprintln!("nano suite: {}...", kind.name());
                let report = run_suite(kind, &config).expect("nano suite");
                print!("{}", render_report(&report));
                println!();
                for r in &report.results {
                    for m in &r.metrics {
                        csv_rows.push(vec![
                            kind.name().to_string(),
                            r.component.to_string(),
                            r.dimension.label().to_string(),
                            m.name.to_string(),
                            format!("{:.3}", m.value),
                            String::new(),
                            String::new(),
                            "1".into(),
                            "fixed".into(),
                            m.unit.to_string(),
                        ]);
                    }
                }
            }
        }
        Some(protocol) => {
            for kind in FsKind::ALL {
                eprintln!("nano suite: {} under {}...", kind.name(), protocol);
                let report = run_suite_protocol(kind, &config, &protocol).expect("nano suite");
                print!("{}", render_protocol_report(&report));
                println!();
                for m in &report.metrics {
                    csv_rows.push(vec![
                        kind.name().to_string(),
                        m.component.to_string(),
                        m.dimension.label().to_string(),
                        m.name.to_string(),
                        format!("{:.3}", m.summary.mean),
                        m.ci.map(|ci| format!("{:.3}", ci.lo)).unwrap_or_default(),
                        m.ci.map(|ci| format!("{:.3}", ci.hi)).unwrap_or_default(),
                        report.runs.len().to_string(),
                        report.verdict.label().to_string(),
                        m.unit.to_string(),
                    ]);
                }
            }
        }
    }
    write_results(
        "nano.csv",
        &to_csv(
            &[
                "fs",
                "component",
                "dimension",
                "metric",
                "mean",
                "ci_lo",
                "ci_hi",
                "runs",
                "verdict",
                "unit",
            ],
            &csv_rows,
        ),
    );
}
