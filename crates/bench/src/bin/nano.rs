//! Runs the Section 4 nano-benchmark suite against all three simulated
//! file systems and prints the multi-dimensional comparison the paper
//! asks for instead of single numbers.
//!
//! Usage: `cargo run -p rb-bench --release --bin nano [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::nano::{render_report, run_suite, NanoConfig};
use rb_core::report::to_csv;
use rb_core::testbed::FsKind;

fn main() {
    let config = if quick_requested() {
        NanoConfig::quick()
    } else {
        NanoConfig::default()
    };
    let mut csv_rows = Vec::new();
    for kind in FsKind::ALL {
        eprintln!("nano suite: {}...", kind.name());
        let report = run_suite(kind, &config).expect("nano suite");
        print!("{}", render_report(&report));
        println!();
        for r in &report.results {
            for m in &r.metrics {
                csv_rows.push(vec![
                    kind.name().to_string(),
                    r.component.to_string(),
                    r.dimension.label().to_string(),
                    m.name.to_string(),
                    format!("{:.3}", m.value),
                    m.unit.to_string(),
                ]);
            }
        }
    }
    write_results(
        "nano.csv",
        &to_csv(
            &["fs", "component", "dimension", "metric", "value", "unit"],
            &csv_rows,
        ),
    );
}
