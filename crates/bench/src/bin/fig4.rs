//! Regenerates paper Figure 4: latency histograms over time for a
//! 256 MB file on Ext2 — the disk peak (~2^23 ns) fades while the cache
//! peak (~2^11 ns) grows, and the distribution is bimodal for most of
//! the run.
//!
//! Usage: `cargo run -p rb-bench --release --bin fig4 [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::figures::{fig4, render_fig4, Fig4Config};
use rb_core::report::to_csv;

fn main() {
    let config = if quick_requested() {
        Fig4Config::quick()
    } else {
        Fig4Config::paper()
    };
    eprintln!(
        "fig4: {} file over {}s, histogram per {}s window...",
        config.file_size,
        config.duration.as_secs(),
        config.window.as_secs()
    );
    let data = fig4(&config).expect("fig4 experiment");
    print!("{}", render_fig4(&data));
    println!(
        "bimodal windows: {}/{} (single-number reporting invalid for most of the run)",
        data.bimodal_windows(),
        data.windows.len()
    );

    let mut rows = Vec::new();
    for w in &data.windows {
        for k in 0..32 {
            rows.push(vec![
                format!("{}", w.start.as_secs()),
                format!("{k}"),
                format!("{:.4}", w.histogram.fraction(k) * 100.0),
            ]);
        }
    }
    write_results(
        "fig4.csv",
        &to_csv(&["seconds", "log2_bucket", "percent"], &rows),
    );
}
