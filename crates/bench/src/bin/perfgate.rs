//! perfgate: times the harness itself and records the bench trajectory.
//!
//! The paper's complaint is that benchmarks report unqualified numbers;
//! the harness should hold itself to the same bar. `perfgate` times
//! nine canonical scenarios — the quick Figure 1 campaign, a 4×4
//! sweep-cell grid, an as-fast-as-possible replay of the golden v2
//! trace spatially scaled ×32, an 8-process fileserver run through
//! the discrete-event scheduler, the same run under an open-loop
//! Poisson arrival stream, a raw event-queue pump over the arena
//! heap, a flight-recorder overhead probe (the scheduler run with
//! every recorder off, gated at ≤2% against the pre-recorder
//! trajectory), and a fault-layer overhead probe (the same run with
//! no fault plan armed, under the same ≤2% budget) — over N
//! repetitions, and writes `BENCH_PR<n>.json` with
//! median + IQR wall time, throughput in scenario work units per
//! second, and peak RSS (from `/proc/self/status` where available).
//! One such file per PR is the performance trajectory of the harness.
//! The first three scenarios run the serial engine, so their
//! trajectory records that single-process hot-path speed survives the
//! concurrency refactor.
//!
//! By default each scenario runs in its own child process (`--only`
//! re-invocation), so a heavyweight scenario cannot pollute the heap or
//! allocator state of the ones after it; the parent merges the
//! children's JSON.
//!
//! Usage:
//!   cargo run -p rb-bench --release --bin perfgate [-- --quick]
//!       [--reps N] [--out FILE] [--baseline FILE] [--only NAME]
//!       [--gate RATIO]
//!
//! `--quick` runs fewer repetitions (a CI smoke that still writes valid
//! JSON). `--baseline FILE` reads a previous perfgate JSON and reports
//! per-scenario speedups against it (embedded in the output under
//! `"speedup_vs_baseline"`; scenarios with no baseline entry are
//! reported as `"new"`). `--gate RATIO` turns the comparison into a
//! regression gate: if any baselined scenario's speedup falls below
//! RATIO (e.g. `0.90` = allow up to a 10% slowdown), perfgate still
//! writes the JSON but exits non-zero.

use rb_core::campaign::{
    run_campaign, run_campaign_with, CampaignOptions, Personality, StoreOptions, SweepSpec,
};
use rb_core::figures::{fig1_campaign, Fig1Config};
use rb_core::report::Json;
use rb_core::runner::RunPlan;
use rb_core::sched::Arrival;
use rb_core::testbed;
use rb_core::trace::{apply, replay_with, ReplayConfig, Timing, Trace, Transform};
use rb_core::workload::{personalities, Engine, EngineConfig};
use rb_obs::ObsConfig;
use rb_simcore::events::EventQueue;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use std::time::Instant;

/// One timed scenario: a name, a unit label, and a closure running the
/// scenario once, returning how many work units it performed.
struct Scenario {
    name: &'static str,
    unit: &'static str,
    run: Box<dyn FnMut() -> u64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Peak resident set size in bytes, if the kernel exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    args.iter()
        .position(|a| *a == long)
        .map(|i| args.get(i + 1).cloned().unwrap_or_default())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
        })
}

/// The golden v2 trace scaled ×32 (the replay scenario's input).
fn scaled_golden() -> Trace {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/golden_v2.trace"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run from the repo)"));
    let trace = Trace::from_text(&text).expect("golden trace parses");
    apply(&trace, &[Transform::Scale { clones: 32 }]).expect("scale x32")
}

/// Scenario names, in run order (the parent dispatches children by
/// name without constructing the scenarios themselves).
const SCENARIO_NAMES: [&str; 9] = [
    "fig1-quick",
    "sweep-4x4",
    "replay-x32",
    "scaling-8p",
    "open-loop-8p",
    "events-pump",
    "obs-overhead",
    "faults-off",
    "sweep-warm",
];

/// The warm pass of `sweep-warm` must be at least this many times
/// faster than its cold pass: loading 16 verified records has to beat
/// executing 16 cells by an order of magnitude, or the store is not
/// pulling its weight.
const SWEEP_WARM_MIN_SPEEDUP: f64 = 10.0;

/// The flight-recorder overhead probe may cost at most this fraction
/// of its pre-recorder baseline: 0.98x = a 2% slowdown budget for the
/// disabled path's branch checks.
const OBS_OVERHEAD_FLOOR: f64 = 0.98;

/// Same budget for the fault layer: with no plan armed, the engine's
/// fault checks are `Option::None` branches and may cost at most 2%
/// against the pre-faults scaling-8p trajectory.
const FAULTS_OFF_FLOOR: f64 = 0.98;

/// The nine canonical scenarios.
fn scenarios(quick: bool) -> Vec<Scenario> {
    // Scenario 1: the quick Figure 1 campaign (single worker so the
    // measurement is a plain single-thread workload).
    let fig1_cells = Fig1Config::quick().sizes.len() as u64;
    let fig1_runs: u64 = match Fig1Config::quick().plan.protocol {
        rb_core::runner::Protocol::FixedRuns(n) => u64::from(n),
        ref p => panic!("fig1-quick work accounting expects a fixed protocol, got {p}"),
    };
    let fig1 = Scenario {
        name: "fig1-quick",
        unit: "cell-runs",
        run: Box::new(move || {
            let data = fig1_campaign(&Fig1Config::quick(), 1).expect("fig1 quick");
            assert_eq!(data.points.len() as u64, fig1_cells);
            fig1_cells * fig1_runs
        }),
    };

    // Scenario 2: a 4×4 sweep-cell grid (4 file sizes × 4 cache
    // capacities, random read on ext2), one fixed run per cell.
    let sweep = Scenario {
        name: "sweep-4x4",
        unit: "cells",
        run: Box::new(|| {
            let mut plan = RunPlan::quick(0);
            plan.duration = Nanos::from_secs(2);
            plan.window = Nanos::from_secs(1);
            let spec = SweepSpec {
                name: "perfgate-4x4".into(),
                personalities: vec![Personality::RandomRead],
                traces: Vec::new(),
                file_sizes: [16u64, 32, 48, 64].iter().map(|&m| Bytes::mib(m)).collect(),
                file_counts: vec![0],
                filesystems: vec![rb_core::testbed::FsKind::Ext2],
                cache_capacities: [8u64, 16, 32, 64].iter().map(|&m| Bytes::mib(m)).collect(),
                processes: vec![1],
                arrivals: Vec::new(),
                faults: Vec::new(),
                retry: rb_faults::RetryPolicy::None,
                slo_p99: None,
                plan,
                device: Bytes::mib(512),
                run_budget: None,
            };
            let report = run_campaign(&spec, 1).expect("sweep 4x4");
            report.cells.len() as u64
        }),
    };

    // Scenario 3: afap replay of golden_v2 ×32, repeated onto fresh
    // targets within one timed repetition so the sample is long enough
    // to measure.
    let trace = scaled_golden();
    let trace_ops = trace.len() as u64;
    let inner: u64 = if quick { 8 } else { 64 };
    let replay = Scenario {
        name: "replay-x32",
        unit: "ops",
        run: Box::new(move || {
            let mut total = 0u64;
            for i in 0..inner {
                let mut target = testbed::paper_ext2(Bytes::mib(256), i);
                let result = replay_with(
                    &mut target,
                    &trace,
                    &ReplayConfig {
                        timing: Timing::Afap,
                        seed: 0,
                    },
                );
                assert_eq!(result.errors, 0, "replay failed: {:?}", result.first_error);
                total += result.ops;
            }
            assert_eq!(total, trace_ops * inner);
            total
        }),
    };

    // Scenario 4: an 8-process fileserver on ext2 through the
    // discrete-event scheduler — times the concurrency substrate itself
    // (event queue, core tokens, device queue, timed stack ops) on a
    // fixed virtual duration.
    let scaling_secs: u64 = if quick { 2 } else { 5 };
    let scaling = Scenario {
        name: "scaling-8p",
        unit: "ops",
        run: Box::new(move || {
            let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::gib(1), 5);
            let workload = personalities::fileserver(50);
            let config = EngineConfig {
                duration: Nanos::from_secs(scaling_secs),
                window: Nanos::from_secs(1),
                seed: 5,
                cold_start: false,
                prewarm: false,
                cpu_jitter_sigma: 0.005,
                max_errors: 100,
                processes: 8,
                cores: 4,
                arrival: Arrival::Closed,
                obs: ObsConfig::default(),
                faults: None,
                retry: rb_faults::RetryPolicy::None,
            };
            let rec = Engine::run(&mut target, &workload, &config).expect("scaling-8p");
            assert!(rec.ops > 0);
            rec.ops
        }),
    };

    // Scenario 5: the same 8-process fileserver under an open-loop
    // Poisson arrival stream — times the admission queue, the arrival
    // event stream, and the latency bookkeeping on top of the
    // scheduler substrate scenario 4 measures.
    let open_secs: u64 = if quick { 2 } else { 5 };
    let open = Scenario {
        name: "open-loop-8p",
        unit: "ops",
        run: Box::new(move || {
            let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::gib(1), 5);
            let workload = personalities::fileserver(50);
            let config = EngineConfig {
                duration: Nanos::from_secs(open_secs),
                window: Nanos::from_secs(1),
                seed: 5,
                cold_start: false,
                prewarm: false,
                cpu_jitter_sigma: 0.005,
                max_errors: 100,
                processes: 8,
                cores: 4,
                arrival: Arrival::Poisson { rate: 20_000 },
                obs: ObsConfig::default(),
                faults: None,
                retry: rb_faults::RetryPolicy::None,
            };
            let rec = Engine::run(&mut target, &workload, &config).expect("open-loop-8p");
            let report = rec.open_loop.expect("open-loop report");
            assert_eq!(
                report.offered,
                report.completed + report.failed + report.dropped
            );
            assert!(rec.ops > 0);
            rec.ops
        }),
    };
    // Scenario 6: a raw event-queue pump — steady-state schedule/pop
    // pairs at depth 1024 over the arena-backed 4-ary heap, the
    // substrate every scheduled run drives. Times the queue alone, with
    // a data-dependent interval so the heap shape stays irregular.
    let pump_events: u64 = if quick { 2_000_000 } else { 8_000_000 };
    let pump = Scenario {
        name: "events-pump",
        unit: "events",
        run: Box::new(move || {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.schedule(Nanos::from_nanos(i), i);
            }
            let mut acc = 0u64;
            for i in 1024..pump_events {
                let (t, s) = q.pop().expect("steady-state queue is non-empty");
                acc = acc.wrapping_add(s);
                q.schedule(t + Nanos::from_nanos(acc % 97 + 1), i);
            }
            while q.pop().is_some() {}
            std::hint::black_box(acc);
            pump_events
        }),
    };
    // Scenario 7: the flight-recorder overhead probe — the identical
    // 8-process run as scaling-8p, with every recorder explicitly off
    // (the default). The engine still passes through the flight
    // recorder's branch checks, and that disabled path is what this
    // scenario prices. Its baseline aliases to the pre-recorder
    // scaling-8p entry in BENCH_PR7.json, with a tighter ≤2% gate.
    let obs_secs: u64 = if quick { 2 } else { 5 };
    let obs_probe = Scenario {
        name: "obs-overhead",
        unit: "ops",
        run: Box::new(move || {
            let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::gib(1), 5);
            let workload = personalities::fileserver(50);
            let config = EngineConfig {
                duration: Nanos::from_secs(obs_secs),
                window: Nanos::from_secs(1),
                seed: 5,
                cold_start: false,
                prewarm: false,
                cpu_jitter_sigma: 0.005,
                max_errors: 100,
                processes: 8,
                cores: 4,
                arrival: Arrival::Closed,
                obs: ObsConfig::default(),
                faults: None,
                retry: rb_faults::RetryPolicy::None,
            };
            let rec = Engine::run(&mut target, &workload, &config).expect("obs-overhead");
            assert!(
                rec.metrics.is_none() && rec.trace.is_none(),
                "recorder must stay off in the overhead probe"
            );
            assert!(rec.ops > 0);
            rec.ops
        }),
    };
    // Scenario 8: the fault-layer overhead probe — the identical
    // 8-process run as scaling-8p with no fault plan armed. Every op
    // still crosses the injection hooks (device service, allocation,
    // crash check) as disabled branches, and that path is what this
    // scenario prices. Its baseline aliases to the pre-faults
    // scaling-8p entry, with the same ≤2% budget as obs-overhead.
    let faults_secs: u64 = if quick { 2 } else { 5 };
    let faults_off = Scenario {
        name: "faults-off",
        unit: "ops",
        run: Box::new(move || {
            let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::gib(1), 5);
            let workload = personalities::fileserver(50);
            let config = EngineConfig {
                duration: Nanos::from_secs(faults_secs),
                window: Nanos::from_secs(1),
                seed: 5,
                cold_start: false,
                prewarm: false,
                cpu_jitter_sigma: 0.005,
                max_errors: 100,
                processes: 8,
                cores: 4,
                arrival: Arrival::Closed,
                obs: ObsConfig::default(),
                faults: None,
                retry: rb_faults::RetryPolicy::None,
            };
            let rec = Engine::run(&mut target, &workload, &config).expect("faults-off");
            assert!(
                rec.ledger.is_none(),
                "no ledger may materialize when faults are off"
            );
            assert!(rec.ops > 0);
            rec.ops
        }),
    };
    // Scenario 9: the result-store scale proof — a 4-axis sweep (size ×
    // cache × fs × processes, 16 cells) run twice in one process-tree
    // against a fresh content-addressed store: cold (every cell
    // executes and streams to disk) then warm (every cell loads and
    // verifies from disk). The scenario self-validates the store's
    // contract — warm executes 0 cells, both reports are byte-identical,
    // and warm is at least 10x faster — and reports the *pair*, so the
    // trajectory prices cold streaming overhead and warm win together.
    let sweep_warm = Scenario {
        name: "sweep-warm",
        unit: "cells",
        run: Box::new(move || {
            let mut plan = RunPlan::quick(0);
            plan.duration = Nanos::from_secs(2);
            plan.window = Nanos::from_secs(1);
            let spec = SweepSpec {
                name: "perfgate-sweep-warm".into(),
                personalities: vec![Personality::RandomRead],
                file_sizes: vec![Bytes::mib(16), Bytes::mib(32)],
                file_counts: vec![0],
                filesystems: vec![testbed::FsKind::Ext2, testbed::FsKind::Xfs],
                cache_capacities: vec![Bytes::mib(8), Bytes::mib(16)],
                processes: vec![1, 2],
                plan,
                device: Bytes::mib(512),
                ..SweepSpec::default()
            };
            let dir =
                std::env::temp_dir().join(format!("perfgate-sweep-warm-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = CampaignOptions {
                store: Some(StoreOptions::at(&dir)),
            };
            let t0 = Instant::now();
            let cold = run_campaign_with(&spec, 1, &opts).expect("cold sweep");
            let cold_wall = t0.elapsed();
            let t1 = Instant::now();
            let warm = run_campaign_with(&spec, 1, &opts).expect("warm sweep");
            let warm_wall = t1.elapsed();
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(cold.stats.executed, cold.stats.expanded);
            assert_eq!(
                warm.stats.executed, 0,
                "warm rerun of an unchanged sweep must execute 0 cells"
            );
            assert_eq!(
                cold.report.to_csv(),
                warm.report.to_csv(),
                "cached report must be byte-identical to the live one"
            );
            let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
            assert!(
                speedup >= SWEEP_WARM_MIN_SPEEDUP,
                "store warm pass only {speedup:.1}x over cold (cold {:.1} ms, warm {:.1} ms); \
                 need >= {SWEEP_WARM_MIN_SPEEDUP}x",
                cold_wall.as_secs_f64() * 1e3,
                warm_wall.as_secs_f64() * 1e3,
            );
            (cold.stats.expanded + warm.stats.expanded) as u64
        }),
    };
    vec![
        fig1, sweep, replay, scaling, open, pump, obs_probe, faults_off, sweep_warm,
    ]
}

/// Extracts `(name, wall_ms_median)` pairs from a perfgate JSON (a
/// targeted scan, not a general JSON parser — enough for files perfgate
/// itself wrote).
fn medians_of(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\":\"") {
        rest = &rest[pos + 8..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(mpos) = rest.find("\"wall_ms_median\":") else {
            break;
        };
        let tail = &rest[mpos + 17..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Extracts the contents of the `"scenarios":[...]` array from a child
/// run's JSON via a bracket-balance scan.
fn scenario_fragment(text: &str) -> Option<String> {
    let start = text.find("\"scenarios\":[")? + "\"scenarios\":[".len();
    let mut depth = 1usize;
    for (i, c) in text[start..].char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..start + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs every scenario in its own child process (`--only NAME`),
/// returning the merged scenario-array fragments and the max child
/// RSS. `None` means spawning itself failed and the caller should fall
/// back to in-process measurement; a child that *ran* and failed is a
/// real scenario failure and exits with its name on stderr instead of
/// being silently re-run.
fn run_isolated(names: &[&'static str], reps: usize, quick: bool) -> Option<(String, Option<u64>)> {
    let exe = std::env::current_exe().ok()?;
    let mut fragments = Vec::new();
    let mut rss: Option<u64> = None;
    for name in names {
        let tmp =
            std::env::temp_dir().join(format!("perfgate-{}-{}.json", std::process::id(), name));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--only")
            .arg(name)
            .arg("--reps")
            .arg(reps.to_string())
            .arg("--out")
            .arg(&tmp);
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().ok()?;
        if !status.success() {
            eprintln!("error: scenario {name} failed ({status}); see its output above");
            std::process::exit(1);
        }
        let text = std::fs::read_to_string(&tmp).ok()?;
        let _ = std::fs::remove_file(&tmp);
        fragments.push(scenario_fragment(&text)?);
        if let Some(pos) = text.find("\"peak_rss_bytes\":") {
            let tail = &text[pos + 17..];
            let num: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = num.parse::<u64>() {
                rss = Some(rss.unwrap_or(0).max(v));
            }
        }
    }
    Some((fragments.join(","), rss))
}

/// Assembles and writes the final JSON, with the optional baseline
/// comparison, from an already-rendered scenario-array body.
fn finish(scenario_body: String, rss: Option<u64>, quick: bool, reps: usize, out_path: &str) {
    let gate: Option<f64> = flag("gate").map(|g| {
        g.parse().unwrap_or_else(|_| {
            eprintln!("error: --gate needs a ratio like 0.90, got {g:?}");
            std::process::exit(2);
        })
    });
    let mut speedup = String::new();
    let mut below_gate: Vec<(String, f64)> = Vec::new();
    if let Some(base_path) = flag("baseline") {
        match std::fs::read_to_string(&base_path) {
            Ok(base_text) => {
                let base = medians_of(&base_text);
                let mut parts = Vec::new();
                for (name, ms) in medians_of(&scenario_body) {
                    // The overhead probe measures a path the old binary
                    // also had (the blind scheduled run): when the
                    // baseline predates the probe, alias it to the
                    // identical scaling-8p entry and hold it to the
                    // tighter disabled-path budget.
                    let mut entry = base.iter().find(|(n, _)| *n == name);
                    let mut floor = gate;
                    if name == "obs-overhead" {
                        if entry.is_none() {
                            entry = base.iter().find(|(n, _)| n == "scaling-8p");
                        }
                        floor = gate.map(|g| g.max(OBS_OVERHEAD_FLOOR));
                    }
                    if name == "faults-off" {
                        if entry.is_none() {
                            entry = base.iter().find(|(n, _)| n == "scaling-8p");
                        }
                        floor = gate.map(|g| g.max(FAULTS_OFF_FLOOR));
                    }
                    match entry {
                        Some((_, base_ms)) if ms > 0.0 => {
                            let ratio = (base_ms / ms * 100.0).round() / 100.0;
                            eprintln!("{name}: {ratio}x vs {base_path}");
                            if floor.is_some_and(|g| ratio < g) {
                                below_gate.push((name.clone(), ratio));
                            }
                            parts.push(format!("{}:{ratio}", Json::Str(name.clone())));
                        }
                        Some(_) => {}
                        // A scenario the baseline has no record of: mark
                        // it, with its absolute time, rather than
                        // silently dropping it, so the trajectory shows
                        // where the suite grew and at what cost.
                        None => {
                            eprintln!(
                                "{name}: new at {ms:.1} ms (no baseline entry in {base_path})"
                            );
                            parts.push(format!("{}:\"new\"", Json::Str(name.clone())));
                        }
                    }
                }
                if !parts.is_empty() {
                    speedup = format!(",\"speedup_vs_baseline\":{{{}}}", parts.join(","));
                }
            }
            Err(e) => {
                eprintln!("error: cannot read --baseline {base_path}: {e}");
                std::process::exit(2);
            }
        }
    } else if gate.is_some() {
        eprintln!("error: --gate requires --baseline");
        std::process::exit(2);
    }
    let rss_field = match rss {
        Some(v) => format!(",\"peak_rss_bytes\":{v}"),
        None => String::new(),
    };
    let json = format!(
        "{{\"bench\":\"perfgate\",\"pr\":10,\"schema\":1,\"quick\":{quick},\
         \"reps\":{reps},\"scenarios\":[{scenario_body}]{rss_field}{speedup}}}\n"
    );
    // `--out results/perfgate.json` must work on a fresh checkout: the
    // directory is created, not required.
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                std::process::exit(1);
            }
        }
    }
    match std::fs::write(out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    // Gate verdict comes after the write so the JSON artifact always
    // exists for the run that failed.
    if let Some(g) = gate {
        if below_gate.is_empty() {
            eprintln!("gate: all baselined scenarios >= {g}x");
        } else {
            for (name, ratio) in &below_gate {
                eprintln!("gate FAIL: {name} at {ratio}x < {g}x");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    let reps: usize = match flag("reps") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --reps needs a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None if quick => 3,
        None => 7,
    };
    let out_path = flag("out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let only = flag("only");

    // The parent dispatches children by name; only a child (--only) or
    // the in-process fallback pays for scenario construction.
    match &only {
        Some(only) => {
            if !SCENARIO_NAMES.contains(&only.as_str()) {
                eprintln!("error: --only {only:?} matches no scenario");
                std::process::exit(2);
            }
        }
        None => {
            eprintln!("perfgate: {reps} repetition(s) per scenario, one process each...");
            if let Some((body, rss)) = run_isolated(&SCENARIO_NAMES, reps, quick) {
                finish(body, rss, quick, reps, &out_path);
                return;
            }
            eprintln!("perfgate: child spawn failed; measuring in-process");
        }
    }

    let mut scenarios = scenarios(quick);
    if let Some(only) = &only {
        scenarios.retain(|s| s.name == only.as_str());
    }
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>14}",
        "scenario", "reps", "median ms", "iqr ms", "work/s"
    );
    let mut rendered: Vec<String> = Vec::new();
    for s in &mut scenarios {
        let mut walls_ms = Vec::with_capacity(reps);
        let mut units = 0u64;
        for _ in 0..reps {
            let t0 = Instant::now();
            units = (s.run)();
            walls_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let mut sorted = walls_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = percentile(&sorted, 0.5);
        let iqr = percentile(&sorted, 0.75) - percentile(&sorted, 0.25);
        let per_sec = if median > 0.0 {
            units as f64 / (median / 1e3)
        } else {
            0.0
        };
        println!(
            "{:<12} {:>6} {:>12.1} {:>10.1} {:>14.0}",
            s.name, reps, median, iqr, per_sec
        );
        rendered.push(
            Json::obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("unit", Json::Str(s.unit.to_string())),
                ("work_units", Json::Num(units as f64)),
                ("wall_ms_median", Json::Num((median * 10.0).round() / 10.0)),
                ("wall_ms_iqr", Json::Num((iqr * 10.0).round() / 10.0)),
                ("units_per_sec", Json::Num(per_sec.round())),
                (
                    "wall_ms_samples",
                    Json::Arr(
                        walls_ms
                            .iter()
                            .map(|w| Json::Num((*w * 10.0).round() / 10.0))
                            .collect(),
                    ),
                ),
            ])
            .to_string(),
        );
    }
    finish(rendered.join(","), peak_rss_bytes(), quick, reps, &out_path);
}
