//! Renders the latency-vs-offered-load hockey stick on the *real*
//! engine: a closed-loop run measures the testbed's capacity, then a
//! ladder of open-loop Poisson rates — from well below the knee to
//! well past it — records tail latency *including queue wait* at each
//! rung. Closed loops flatten this curve into a single point; the
//! open-loop dimension is what makes the knee visible at all.
//!
//! Usage: `cargo run -p rb-bench --release --bin latency [-- --quick]`
//!
//! `--quick` shortens the virtual duration and doubles as the CI smoke
//! mode: it validates the curve (a balanced request ledger at every
//! rung, ordered percentiles, no drops below the knee, and a p99 that
//! genuinely explodes past it) and exits non-zero on violation.

use rb_bench::{quick_requested, write_results};
use rb_core::prelude::*;
use rb_core::report::{to_csv, Json};
use rb_core::testbed;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

/// Offered load as a percentage of measured closed-loop capacity.
const RUNGS: [u64; 6] = [25, 50, 75, 100, 125, 150];

fn config(duration: Nanos, arrival: Arrival) -> EngineConfig {
    EngineConfig {
        duration,
        window: Nanos::from_secs(1),
        seed: 42,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.0,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival,
        obs: ObsConfig::default(),
        faults: None,
        retry: RetryPolicy::None,
    }
}

fn run(duration: Nanos, arrival: Arrival) -> Recording {
    let mut t = testbed::paper_ext2(Bytes::gib(1), 42);
    let w = personalities::random_read(Bytes::mib(16));
    Engine::run(&mut t, &w, &config(duration, arrival)).expect("engine run")
}

fn ms(v: Option<Nanos>) -> f64 {
    v.map(|n| n.as_secs_f64() * 1e3).unwrap_or(f64::NAN)
}

/// Sanity-checks one rung; returns a violation description if any.
fn validate(pct: u64, open: &OpenLoopReport) -> Option<String> {
    if open.offered != open.completed + open.failed + open.dropped {
        return Some(format!(
            "{pct}%: ledger does not sum ({} offered vs {} + {} + {})",
            open.offered, open.completed, open.failed, open.dropped
        ));
    }
    if !(open.p50 <= open.p99 && open.p99 <= open.p999) {
        return Some(format!(
            "{pct}%: percentiles out of order ({:?} / {:?} / {:?})",
            open.p50, open.p99, open.p999
        ));
    }
    if pct <= 50 && open.dropped > 0 {
        return Some(format!("{pct}%: {} drops below the knee", open.dropped));
    }
    None
}

fn main() {
    let quick = quick_requested();
    let duration = if quick {
        Nanos::from_secs(3)
    } else {
        Nanos::from_secs(10)
    };
    let mut violations = Vec::new();

    let closed = run(duration, Arrival::Closed);
    let capacity = closed.ops_per_sec() as u64;
    println!("closed-loop capacity: {capacity} ops/s\n");
    if capacity < 100 {
        violations.push(format!("implausible capacity {capacity} ops/s"));
    }

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut p99_curve = Vec::new();
    println!(
        "{:>9} {:>12} {:>10} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "offered", "rate(ops/s)", "completed", "dropped", "p50(ms)", "p99(ms)", "p999(ms)", "queue"
    );
    for pct in RUNGS {
        let rate = (capacity * pct / 100).max(1);
        let rec = run(duration, Arrival::Poisson { rate });
        let open = rec.open_loop.expect("open-loop report");
        if let Some(v) = validate(pct, &open) {
            violations.push(v);
        }
        println!(
            "{:>8}% {:>12} {:>10} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>7}",
            pct,
            rate,
            open.completed,
            open.dropped,
            ms(open.p50),
            ms(open.p99),
            ms(open.p999),
            open.max_queue_depth
        );
        p99_curve.push((pct as f64, ms(open.p99)));
        rows.push(vec![
            pct.to_string(),
            rate.to_string(),
            open.offered.to_string(),
            open.completed.to_string(),
            open.failed.to_string(),
            open.dropped.to_string(),
            format!("{:.3}", ms(open.p50)),
            format!("{:.3}", ms(open.p99)),
            format!("{:.3}", ms(open.p999)),
            open.max_queue_depth.to_string(),
        ]);
        cells.push(Json::obj(vec![
            ("offered_pct", Json::Num(pct as f64)),
            ("rate_ops_per_sec", Json::Num(rate as f64)),
            ("offered", Json::Num(open.offered as f64)),
            ("completed", Json::Num(open.completed as f64)),
            ("failed", Json::Num(open.failed as f64)),
            ("dropped", Json::Num(open.dropped as f64)),
            ("p50_ms", Json::Num(ms(open.p50))),
            ("p99_ms", Json::Num(ms(open.p99))),
            ("p999_ms", Json::Num(ms(open.p999))),
            ("max_queue_depth", Json::Num(open.max_queue_depth as f64)),
        ]));
    }

    // The hockey stick itself: p99 against offered load.
    println!();
    print!(
        "{}",
        rb_core::report::ascii_chart(&[("p99 ms", &p99_curve)], 60, 12)
    );
    println!();

    // The shape that justifies the whole dimension: flat below the
    // knee, explosive past it.
    let below = p99_curve[1].1; // 50 %
    let above = p99_curve[5].1; // 150 %
    if !(above > below * 5.0) {
        violations.push(format!(
            "no hockey stick: p99 {below:.3} ms at 50% vs {above:.3} ms at 150% of capacity"
        ));
    }

    write_results(
        "latency.csv",
        &to_csv(
            &[
                "offered_pct",
                "rate_ops_per_sec",
                "offered",
                "completed",
                "failed",
                "dropped",
                "p50_ms",
                "p99_ms",
                "p999_ms",
                "max_queue_depth",
            ],
            &rows,
        ),
    );
    write_results(
        "latency.json",
        &Json::obj(vec![
            ("capacity_ops_per_sec", Json::Num(capacity as f64)),
            ("duration_secs", Json::Num(duration.as_secs_f64())),
            ("rungs", Json::Arr(cells)),
        ])
        .to_string(),
    );
    println!("Below the knee the queue is invisible; past it every");
    println!("microsecond of deficit compounds into milliseconds of wait.");
    println!("A closed loop would have reported one flat throughput number");
    println!("for every rung of this ladder.");

    if !violations.is_empty() {
        eprintln!("latency smoke FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
