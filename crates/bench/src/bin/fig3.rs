//! Regenerates paper Figure 3: read-latency histograms for 64 MB,
//! 1024 MB and 25 GB files (unimodal memory peak → balanced bimodal →
//! disk-only peak).
//!
//! Usage: `cargo run -p rb-bench --release --bin fig3 [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::figures::{fig3, render_fig3, Fig3Config};
use rb_core::report::to_csv;
use rb_stats::peaks::bimodal_balance;

fn main() {
    let config = if quick_requested() {
        Fig3Config::quick()
    } else {
        Fig3Config::paper()
    };
    eprintln!(
        "fig3: sizes {:?}...",
        config
            .sizes
            .iter()
            .map(|s| format!("{s}"))
            .collect::<Vec<_>>()
    );
    let data = fig3(&config).expect("fig3 experiment");
    print!("{}", render_fig3(&data));
    for h in &data.histograms {
        let span = h.histogram.span_orders_of_magnitude();
        print!(
            "{}: {:?}, latency span {:.1} orders of magnitude",
            h.size, h.modality, span
        );
        if let Some(b) = bimodal_balance(&h.histogram) {
            print!(", peak balance {b:.2}");
        }
        println!();
    }

    let mut rows = Vec::new();
    for h in &data.histograms {
        for k in 0..40 {
            rows.push(vec![
                format!("{}", h.size.as_mib()),
                format!("{k}"),
                format!("{:.4}", h.histogram.fraction(k) * 100.0),
            ]);
        }
    }
    write_results(
        "fig3.csv",
        &to_csv(&["size_mib", "log2_bucket", "percent"], &rows),
    );
}
