//! Regenerates the scaling-dimension saturation curves: closed-loop
//! threads over shared cache + single spindle, memory-bound vs
//! disk-bound. Not a paper figure — the measurement the paper's fifth
//! dimension calls for.
//!
//! Usage: `cargo run -p rb-bench --release --bin scaling [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::report::to_csv;
use rb_core::scaling::{render_curve, thread_scaling, ScalingConfig};
use rb_core::testbed::FsKind;
use rb_simcore::time::Nanos;

fn main() {
    let mut rows = Vec::new();
    for (label, mut cfg) in [
        ("memory-bound", ScalingConfig::memory_bound()),
        ("disk-bound", ScalingConfig::disk_bound()),
    ] {
        if quick_requested() {
            cfg.duration = Nanos::from_secs(5);
        }
        let curve = thread_scaling(FsKind::Ext2, &cfg).expect("scaling sweep");
        print!("{}", render_curve(label, &curve));
        println!();
        for p in &curve.points {
            rows.push(vec![
                label.to_string(),
                p.threads.to_string(),
                format!("{:.1}", p.ops_per_sec),
                format!("{:.3}", p.speedup),
            ]);
        }
    }
    write_results(
        "scaling.csv",
        &to_csv(&["regime", "threads", "ops_per_sec", "speedup"], &rows),
    );
    println!("Memory-bound work scales to the core count; disk-bound work");
    println!("queues on the spindle. One workload, two completely different");
    println!("scaling answers — dimension five of five.");
}
