//! Regenerates the scaling-dimension saturation curves on the *real*
//! engine: personality × file system × process count, every point a
//! full multi-process discrete-event run over the shared page cache
//! and the shared spindle. Not a paper figure — the measurement the
//! paper's fifth dimension calls for, now expressible for any workload
//! the harness knows.
//!
//! Also prints the classic memory-bound vs disk-bound pair (the same
//! workload family under two cache regimes) because that contrast *is*
//! the scaling story: one personality, two completely different
//! saturation answers.
//!
//! Usage: `cargo run -p rb-bench --release --bin scaling [-- --quick]`
//!
//! `--quick` shortens the virtual duration and doubles as the CI smoke
//! mode: it validates every curve (positive throughput, unit speedup
//! at one process, a detectable knee, and a monotone-sane shape) and
//! exits non-zero on violation.

use rb_bench::{quick_requested, write_results};
use rb_core::campaign::Personality;
use rb_core::report::to_csv;
use rb_core::scaling::{render_curve, thread_scaling, ScalingConfig, ScalingCurve};
use rb_core::testbed::FsKind;
use rb_simcore::time::Nanos;

/// The personality grid: at least three personalities spanning the
/// in-memory, mixed and metadata regimes.
const PERSONALITIES: [(Personality, u64); 3] = [
    (Personality::RandomRead, 0),
    (Personality::Fileserver, 60),
    (Personality::Varmail, 60),
];

/// Sanity-checks one curve; returns a violation description if any.
fn validate(label: &str, curve: &ScalingCurve) -> Option<String> {
    if curve.points.is_empty() {
        return Some(format!("{label}: empty curve"));
    }
    if curve.points[0].speedup != 1.0 {
        return Some(format!(
            "{label}: first point speedup {} != 1.0",
            curve.points[0].speedup
        ));
    }
    if let Some(p) = curve.points.iter().find(|p| !(p.ops_per_sec > 0.0)) {
        return Some(format!(
            "{label}: {} processes produced {} ops/s",
            p.processes, p.ops_per_sec
        ));
    }
    let Some(knee) = curve.knee() else {
        return Some(format!("{label}: no knee detected"));
    };
    // Monotone-sane: up to the knee the curve never *drops* by more
    // than 10 % point-to-point (contention can flatten a curve early,
    // but a collapse before saturation means the model broke).
    for w in curve.points.windows(2) {
        if w[0].processes < knee && w[1].ops_per_sec < w[0].ops_per_sec * 0.9 {
            return Some(format!(
                "{label}: throughput collapsed before the knee ({} -> {} ops/s at {} -> {} procs)",
                w[0].ops_per_sec, w[1].ops_per_sec, w[0].processes, w[1].processes
            ));
        }
    }
    None
}

fn main() {
    let quick = quick_requested();
    let duration = if quick {
        Nanos::from_secs(3)
    } else {
        Nanos::from_secs(20)
    };
    let mut rows = Vec::new();
    let mut violations = Vec::new();

    // The classic contrast first: one workload, two cache regimes.
    for (label, mut cfg) in [
        ("memory-bound", ScalingConfig::memory_bound()),
        ("disk-bound", ScalingConfig::disk_bound()),
    ] {
        cfg.duration = duration;
        if quick {
            cfg.processes = vec![1, 2, 4, 8];
        }
        let curve = thread_scaling(FsKind::Ext2, &cfg).expect("scaling sweep");
        print!("{}", render_curve(label, &curve));
        println!();
        if let Some(v) = validate(label, &curve) {
            violations.push(v);
        }
        for p in &curve.points {
            rows.push(vec![
                label.to_string(),
                "randomread".to_string(),
                "ext2".to_string(),
                p.processes.to_string(),
                format!("{:.1}", p.ops_per_sec),
                format!("{:.3}", p.speedup),
            ]);
        }
    }

    // The full grid: every personality × every file system, saturation
    // curves from the real engine.
    for (personality, files) in PERSONALITIES {
        for fs in FsKind::ALL {
            let mut cfg = ScalingConfig::memory_bound().with_personality(personality, files);
            cfg.duration = duration;
            cfg.processes = vec![1, 2, 4, 8];
            let label = format!("{}/{}", personality.name(), fs.name());
            let curve = thread_scaling(fs, &cfg).expect("scaling sweep");
            print!("{}", render_curve(&label, &curve));
            println!();
            if let Some(v) = validate(&label, &curve) {
                violations.push(v);
            }
            for p in &curve.points {
                rows.push(vec![
                    "grid".to_string(),
                    personality.name().to_string(),
                    fs.name().to_string(),
                    p.processes.to_string(),
                    format!("{:.1}", p.ops_per_sec),
                    format!("{:.3}", p.speedup),
                ]);
            }
        }
    }

    write_results(
        "scaling.csv",
        &to_csv(
            &[
                "regime",
                "personality",
                "fs",
                "processes",
                "ops_per_sec",
                "speedup",
            ],
            &rows,
        ),
    );
    println!("Memory-bound work scales to the core count; disk-bound work");
    println!("queues on the spindle. One workload, two completely different");
    println!("scaling answers — dimension five of five, now measured on the");
    println!("same engine, cache and device as every other dimension.");

    if !violations.is_empty() {
        eprintln!("scaling smoke FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
