//! Regenerates the paper's Section 3.1 zoom: the throughput drop between
//! 384 MB and 448 MB happens within a < 6 MB window.
//!
//! The fine-grained size ladder is expressed as a campaign spec and
//! sharded over `--jobs N` workers (default: all cores).
//!
//! Usage: `cargo run -p rb-bench --release --bin fig1zoom [-- --quick] [--jobs N]
//!         [--protocol fixed|adaptive] [--runs N] [--ci 2%] [--min-runs 5]
//!         [--max-runs 30]`

use rb_bench::{jobs_requested, protocol_requested, quick_requested, write_results};
use rb_core::figures::{fig1_zoom_campaign, render_fig1, Fig1ZoomConfig};
use rb_core::report::to_csv;

fn main() {
    let mut config = if quick_requested() {
        Fig1ZoomConfig::quick()
    } else {
        Fig1ZoomConfig::paper()
    };
    if let Some(protocol) = protocol_requested() {
        config.plan.protocol = protocol;
    }
    let jobs = jobs_requested();
    eprintln!(
        "fig1zoom: {}..{} step {} under {} on {} worker(s)...",
        config.lo, config.hi, config.step, config.plan.protocol, jobs
    );
    let data = fig1_zoom_campaign(&config, jobs).expect("fig1 zoom experiment");
    print!("{}", render_fig1(&data));
    match data.fragility.halving_distance() {
        Some(d) => println!("throughput halves within {d:.0} MiB (paper: < 6 MB region)"),
        None => println!("no halving found in the zoom range"),
    }
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.size.as_mib()),
                format!("{:.1}", p.mean),
                format!("{:.2}", p.rsd),
            ]
        })
        .collect();
    write_results(
        "fig1zoom.csv",
        &to_csv(&["size_mib", "mean_ops_per_sec", "rsd_percent"], &rows),
    );
}
