//! figreplay: the same trace under different timing policies lands in
//! different regimes — the replay-taxonomy demonstration.
//!
//! Records one varmail session on the paper's ext2 testbed, then
//! replays the identical v2 trace on every simulated file system under
//! `afap`, `faithful` and `scaled=4`. The point the table makes is the
//! tentpole claim of the replay subsystem: *timing policy is part of
//! the experiment definition.* Afap measures peak service capacity
//! (throughput differs per fs, duration is service-bound), faithful
//! measures behaviour under the original load (duration pinned to the
//! recorded span wherever capacity suffices — and throughput converges
//! across file systems, hiding their differences!), and scaled
//! acceleration sits in between until it saturates into the afap
//! regime.
//!
//! Usage: `cargo run -p rb-bench --release --bin figreplay [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::prelude::*;
use rb_core::trace::{replay_with, ReplayConfig};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use std::fmt::Write as _;

fn main() {
    let duration = if quick_requested() {
        Nanos::from_secs(2)
    } else {
        Nanos::from_secs(10)
    };
    eprintln!("figreplay: recording a {duration} varmail session on ext2...");
    let mut origin = rb_core::testbed::paper_ext2(Bytes::gib(1), 7);
    let mut recorder = Recorder::new(&mut origin);
    let workload = personalities::varmail(25);
    let config = EngineConfig {
        duration,
        window: Nanos::from_secs(1),
        seed: 7,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    Engine::run(&mut recorder, &workload, &config).expect("record");
    let trace = recorder.finish();
    let profile = characterize(&trace);
    println!(
        "recorded {} ops, span {}, working set {}:",
        trace.len(),
        trace.span(),
        profile.working_set
    );
    print!("{}", profile.render());
    println!();

    let policies = [
        Timing::Afap,
        Timing::Faithful,
        Timing::Scaled { factor: 4.0 },
    ];
    let mut rows = Vec::new();
    let mut throughputs: Vec<Vec<f64>> = Vec::new();
    let mut csv = String::from("timing,fs,ops,errors,duration_ns,ops_per_sec,hit_ratio\n");
    for timing in policies {
        let mut policy_tp = Vec::new();
        for fs in FsKind::ALL {
            let mut target = rb_core::testbed::paper_fs(fs, Bytes::gib(1), 7);
            let result = replay_with(&mut target, &trace, &ReplayConfig { timing, seed: 7 });
            let hit = target.cache_hit_ratio().unwrap_or(0.0);
            policy_tp.push(result.ops_per_sec());
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{:.1},{:.4}",
                timing.label(),
                fs.name(),
                result.ops,
                result.errors,
                result.duration.as_nanos(),
                result.ops_per_sec(),
                hit
            );
            rows.push(vec![
                timing.label(),
                fs.name().to_string(),
                format!("{}", result.duration),
                format!("{:.0}", result.ops_per_sec()),
                format!("{hit:.3}"),
                format!("{}", result.errors),
            ]);
        }
        throughputs.push(policy_tp);
    }
    println!("one trace, three timing policies, three file systems:");
    print!(
        "{}",
        rb_core::report::text_table(
            &["timing", "fs", "duration", "ops/s", "hits", "errors"],
            &rows
        )
    );

    // The headline numbers: how much of the between-fs spread each
    // policy preserves. Afap exposes file-system differences; faithful
    // deliberately reproduces the recorded arrival rate instead, so
    // wherever every fs keeps up, their throughputs collapse together.
    println!();
    for (timing, tp) in policies.iter().zip(&throughputs) {
        let max = tp.iter().cloned().fold(f64::MIN, f64::max);
        let min = tp.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "{:>10}: between-fs throughput spread {:.2}x",
            timing.label(),
            max / min.max(1e-9)
        );
    }
    write_results("figreplay.csv", &csv);
}
