//! Regenerates paper Figure 1: Ext2 random-read throughput and relative
//! standard deviation vs file size (64 MB → 1024 MB, 10 runs each).
//!
//! Usage: `cargo run -p rb-bench --release --bin fig1 [-- --quick]`

use rb_bench::{quick_requested, write_results};
use rb_core::figures::{fig1, render_fig1, Fig1Config};
use rb_core::report::{to_csv, to_gnuplot};

fn main() {
    let config = if quick_requested() { Fig1Config::quick() } else { Fig1Config::paper() };
    eprintln!(
        "fig1: {} sizes x {} runs of {}s virtual each...",
        config.sizes.len(),
        config.plan.runs,
        config.plan.duration.as_secs()
    );
    let data = fig1(&config).expect("fig1 experiment");
    print!("{}", render_fig1(&data));

    // Machine-readable outputs.
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            let mut row = vec![
                format!("{}", p.size.as_mib()),
                format!("{:.1}", p.mean),
                format!("{:.2}", p.rsd),
            ];
            row.extend(p.samples.iter().map(|s| format!("{s:.1}")));
            row
        })
        .collect();
    let mut headers = vec!["size_mib", "mean_ops_per_sec", "rsd_percent"];
    let run_names: Vec<String> =
        (0..config.plan.runs).map(|i| format!("run{i}")).collect();
    headers.extend(run_names.iter().map(|s| s.as_str()));
    write_results("fig1.csv", &to_csv(&headers, &rows));

    let throughput: Vec<(f64, f64)> = data.fragility.means.clone();
    let rsd: Vec<(f64, f64)> = data.fragility.rsds.clone();
    write_results(
        "fig1.dat",
        &to_gnuplot("size_mib", &[("ops_per_sec", &throughput), ("rsd_percent", &rsd)]),
    );
}
