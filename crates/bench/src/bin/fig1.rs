//! Regenerates paper Figure 1: Ext2 random-read throughput and relative
//! standard deviation vs file size (64 MB → 1024 MB, 10 runs each).
//!
//! The sweep is expressed as a campaign spec, so the sizes run
//! concurrently (one experiment cell per size, sharded over `--jobs N`
//! workers, default: all cores) with deterministic per-cell seeds.
//!
//! Usage: `cargo run -p rb-bench --release --bin fig1 [-- --quick] [--jobs N]
//!         [--protocol fixed|adaptive] [--runs N] [--ci 2%] [--min-runs 5]
//!         [--max-runs 30]`

use rb_bench::{jobs_requested, protocol_requested, quick_requested, write_results};
use rb_core::figures::{fig1_campaign, render_fig1, Fig1Config};
use rb_core::report::{to_csv, to_gnuplot};

fn main() {
    let mut config = if quick_requested() {
        Fig1Config::quick()
    } else {
        Fig1Config::paper()
    };
    if let Some(protocol) = protocol_requested() {
        config.plan.protocol = protocol;
    }
    let jobs = jobs_requested();
    eprintln!(
        "fig1: {} sizes under {} at {}s virtual per run on {} worker(s)...",
        config.sizes.len(),
        config.plan.protocol,
        config.plan.duration.as_secs(),
        jobs
    );
    let data = fig1_campaign(&config, jobs).expect("fig1 experiment");
    print!("{}", render_fig1(&data));

    // Machine-readable outputs. Under an adaptive protocol the sample
    // count varies per point; rows are ragged-right and the header
    // covers the widest row.
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            let mut row = vec![
                format!("{}", p.size.as_mib()),
                format!("{:.1}", p.mean),
                format!("{:.2}", p.rsd),
            ];
            row.extend(p.samples.iter().map(|s| format!("{s:.1}")));
            row
        })
        .collect();
    let widest = data
        .points
        .iter()
        .map(|p| p.samples.len())
        .max()
        .unwrap_or(0);
    let mut headers = vec!["size_mib", "mean_ops_per_sec", "rsd_percent"];
    let run_names: Vec<String> = (0..widest).map(|i| format!("run{i}")).collect();
    headers.extend(run_names.iter().map(|s| s.as_str()));
    write_results("fig1.csv", &to_csv(&headers, &rows));

    let throughput: Vec<(f64, f64)> = data.fragility.means.clone();
    let rsd: Vec<(f64, f64)> = data.fragility.rsds.clone();
    write_results(
        "fig1.dat",
        &to_gnuplot(
            "size_mib",
            &[("ops_per_sec", &throughput), ("rsd_percent", &rsd)],
        ),
    );
}
