//! # rb-bench — paper-artifact regenerators and performance benches
//!
//! One binary per paper artifact (`fig1`, `fig1zoom`, `fig2`, `fig3`,
//! `fig4`, `table1`, `nano`), plus `figreplay` — the replay-taxonomy
//! demonstration: one recorded trace under `afap`/`faithful`/`scaled`
//! timing policies on every file system. Each prints the rows/series
//! the paper reports and drops machine-readable `.csv`/`.dat` files
//! under `results/`. Criterion benches cover the simulation substrate
//! and the harness's ablation studies (cache policies, I/O schedulers,
//! allocators).
//!
//! Run `cargo run -p rb-bench --release --bin fig1 -- --quick` for a
//! smoke pass or without `--quick` for the paper protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rb_core::runner::Protocol;
use std::path::{Path, PathBuf};

/// Returns true if `--quick` was passed on the command line.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Worker-thread count for campaign-backed regenerators: the value of
/// `--jobs N` / `--jobs=N` if given, otherwise the machine's available
/// parallelism. An invalid or missing value after the flag is a hard
/// error (exit 2), never a silent fallback.
pub fn jobs_requested() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let value = args
        .iter()
        .position(|a| a == "--jobs" || a == "-j")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--jobs=").map(str::to_string))
        });
    match value {
        None => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --jobs needs a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Value of a `--flag value` / `--flag=value` pair, if present.
fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    args.iter()
        .position(|a| *a == long)
        .map(|i| args.get(i + 1).cloned().unwrap_or_default())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
        })
}

/// Repetition-protocol override from the command line, if any:
/// `--protocol fixed|adaptive` with `--runs N` (fixed) or
/// `--ci 2% --min-runs 5 --max-runs 30 --confidence 95%` (adaptive),
/// parsed by the same [`Protocol::from_flags`] the `rocketbench` CLI
/// uses (the fixed default here is the paper's 10 runs). Invalid values
/// are a one-line hard error (exit 2), never a panic or a silent
/// fallback.
pub fn protocol_requested() -> Option<Protocol> {
    let (protocol, runs) = (flag_value("protocol"), flag_value("runs"));
    let (ci, min_runs) = (flag_value("ci"), flag_value("min-runs"));
    let (max_runs, confidence) = (flag_value("max-runs"), flag_value("confidence"));
    if [&protocol, &runs, &ci, &min_runs, &max_runs, &confidence]
        .iter()
        .all(|f| f.is_none())
    {
        return None;
    }
    let flags = rb_core::runner::ProtocolFlags {
        protocol: protocol.as_deref(),
        runs: runs.as_deref(),
        ci: ci.as_deref(),
        min_runs: min_runs.as_deref(),
        max_runs: max_runs.as_deref(),
        confidence: confidence.as_deref(),
    };
    match Protocol::from_flags(&flags, 10) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Directory where regenerators drop data files (`results/`, created on
/// demand next to the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).ok();
    dir.to_path_buf()
}

/// Writes a data file into [`results_dir`], reporting the path on
/// stdout. I/O failures are reported, not fatal: the figures also print
/// to the terminal.
pub fn write_results(name: &str, contents: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
