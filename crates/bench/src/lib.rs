//! # rb-bench — paper-artifact regenerators and performance benches
//!
//! One binary per paper artifact (`fig1`, `fig1zoom`, `fig2`, `fig3`,
//! `fig4`, `table1`, `nano`); each prints the rows/series the paper
//! reports and drops machine-readable `.csv`/`.dat` files under
//! `results/`. Criterion benches cover the simulation substrate and the
//! harness's ablation studies (cache policies, I/O schedulers,
//! allocators).
//!
//! Run `cargo run -p rb-bench --release --bin fig1 -- --quick` for a
//! smoke pass or without `--quick` for the paper protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Returns true if `--quick` was passed on the command line.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Directory where regenerators drop data files (`results/`, created on
/// demand next to the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).ok();
    dir.to_path_buf()
}

/// Writes a data file into [`results_dir`], reporting the path on
/// stdout. I/O failures are reported, not fatal: the figures also print
/// to the terminal.
pub fn write_results(name: &str, contents: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
