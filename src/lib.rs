//! Facade crate re-exporting the rocketbench public API.
pub use rb_core as core;
pub use rb_simcache as simcache;
pub use rb_simcore as simcore;
pub use rb_simdisk as simdisk;
pub use rb_simfs as simfs;
pub use rb_stats as stats;
