//! # rocketbench — facade crate
//!
//! Re-exports the whole rocketbench stack under one roof so downstream
//! code (and this workspace's examples and integration tests) can
//! depend on a single crate:
//!
//! * [`core`] — the harness: targets, workloads, the run protocols
//!   (fixed-N and convergence-driven), sweep campaigns, paper figures,
//!   analysis and reports.
//! * [`replay`] — the trace subsystem: v1/v2 trace formats, the
//!   recorder, timing policies, dependency-aware multi-stream replay,
//!   transformations and characterization.
//! * [`simfs`] — simulated file systems and the composed storage stack.
//! * [`simcache`] — the simulated page cache.
//! * [`simdisk`] — simulated block devices.
//! * [`obs`] — the flight recorder: cross-layer counters, virtual-time
//!   span traces, and explain-your-number reports.
//! * [`faults`] — deterministic fault plans: device error injection,
//!   latency degradation, ENOSPC, crash-and-recover, retry policies
//!   and the outcome ledger.
//! * [`simcore`] — virtual time, deterministic PRNG, units.
//! * [`stats`] — the statistics toolkit.
//!
//! The `rocketbench` binary (this package's `src/main.rs`) is the CLI
//! over the same API; `rocketbench help` lists the subcommands,
//! including the parallel `sweep` campaign runner.
//!
//! ```
//! use rocketbench::core::prelude::*;
//! use rocketbench::simcore::units::Bytes;
//!
//! // The five-dimension taxonomy is data, not prose.
//! assert_eq!(Dimension::ALL.len(), 5);
//! // And the paper's testbed is one call away.
//! let target = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 0);
//! let _ = target;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rb_core as core;
pub use rb_faults as faults;
pub use rb_obs as obs;
pub use rb_replay as replay;
pub use rb_simcache as simcache;
pub use rb_simcore as simcore;
pub use rb_simdisk as simdisk;
pub use rb_simfs as simfs;
pub use rb_stats as stats;
