//! The `rocketbench` command-line tool.
//!
//! Runs workload personalities against the simulated testbed or a real
//! directory, executes the nano-benchmark suite, regenerates Table 1,
//! and records/replays portable traces. Run `rocketbench help` for
//! usage.

use rb_core::analysis::Regime;
use rb_core::campaign::{Personality, SweepSpec, TraceSource};
use rb_core::prelude::*;
use rb_core::trace::{
    characterize, merge, replay_with, Recorder, ReplayConfig, Timing, Trace, Transform,
};
use rb_obs::{ObsConfig, TraceConfig};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use std::process::ExitCode;

/// Parsed command-line options (flag → value).
#[derive(Debug, Default)]
struct Opts {
    flags: std::collections::HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .clone();
            flags.insert(name.to_string(), value);
        }
        Ok(Opts { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// Parses sizes like `64M`, `1G`, `8192K`, `4096`.
fn parse_size(s: &str) -> Result<Bytes, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1024 * 1024),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| Bytes::new(n * mult))
        .map_err(|e| format!("bad size {s:?}: {e}"))
}

/// Builds the flight-recorder configuration from `--metrics true`,
/// `--trace-out FILE` and `--trace-sample N`. All observability is
/// opt-in: with none of the flags the engine runs with the recorder
/// fully off and output stays byte-identical.
fn parse_obs(opts: &Opts) -> Result<ObsConfig, String> {
    let metrics = opts.get("metrics").is_some_and(|v| v == "true");
    let trace = match opts.get("trace-out") {
        Some(_) => {
            let sample_every = opts
                .get("trace-sample")
                .map(|v| match v.parse::<u64>() {
                    Ok(n) if n > 0 => Ok(n),
                    _ => Err(format!("bad --trace-sample: {v:?} is not a positive count")),
                })
                .transpose()?
                .unwrap_or(1);
            Some(TraceConfig { sample_every })
        }
        None => {
            if opts.get("trace-sample").is_some() {
                return Err("--trace-sample only applies with --trace-out".into());
            }
            None
        }
    };
    Ok(ObsConfig { metrics, trace })
}

/// Writes a span trace as Chrome trace-event JSON, creating parent
/// directories as needed.
fn write_trace(path: &str, trace: &rb_obs::SpanTrace) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} span events ({} of {} ops sampled) to {path}",
        trace.events.len(),
        trace.sampled,
        trace.seen
    );
    Ok(())
}

/// Parses durations like `30s`, `5m`, `90`.
fn parse_duration(s: &str) -> Result<Nanos, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('s') => (&s[..s.len() - 1], 1u64),
        Some('m') => (&s[..s.len() - 1], 60),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| Nanos::from_secs(n * mult))
        .map_err(|e| format!("bad duration {s:?}: {e}"))
}

/// Builds a target from `sim:ext2` / `sim:ext3` / `sim:xfs` /
/// `real:<path>`.
fn make_target(spec: &str, device: Bytes, seed: u64) -> Result<Box<dyn Target>, String> {
    match spec.split_once(':') {
        Some(("sim", fs)) => {
            let kind = parse_fs(fs)?;
            Ok(Box::new(rb_core::testbed::paper_fs(kind, device, seed)))
        }
        Some(("real", path)) => RealFsTarget::new(path)
            .map(|t| Box::new(t) as Box<dyn Target>)
            .map_err(|e| format!("cannot open {path:?}: {e}")),
        _ => Err(format!(
            "bad target {spec:?}; expected sim:ext2|sim:ext3|sim:xfs|real:<dir>"
        )),
    }
}

fn make_workload(name: &str, size: Bytes, files: u64) -> Result<Workload, String> {
    Ok(match name {
        "randomread" => personalities::random_read(size),
        "seqread" => personalities::sequential_read(size),
        "randomwrite" => personalities::random_write(size),
        "webserver" => personalities::webserver(files),
        "fileserver" => personalities::fileserver(files),
        "varmail" => personalities::varmail(files),
        "postmark" => personalities::postmark(files),
        "metadata" => personalities::metadata_only(files),
        other => return Err(format!("unknown workload {other:?}")),
    })
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    let target_spec = opts.get("target").unwrap_or("sim:ext2");
    let workload_name = opts.get("workload").unwrap_or("randomread");
    let size = parse_size(opts.get("size").unwrap_or("64M"))?;
    let files = opts
        .get("files")
        .map(|f| f.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(100);
    let duration = parse_duration(opts.get("duration").unwrap_or("30s"))?;
    let seed = opts
        .get("seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0);
    let device = Bytes::new((size.as_u64() * 3).max(Bytes::gib(1).as_u64()));

    let arrival = match opts.get("arrival") {
        Some(a) => Arrival::parse(a).map_err(|e| format!("--arrival: {e}"))?,
        None => Arrival::Closed,
    };
    let (faults, retry) = parse_faults(opts)?;

    let obs = parse_obs(opts)?;
    let mut target = make_target(target_spec, device, seed)?;
    let workload = make_workload(workload_name, size, files)?;
    let config = EngineConfig {
        duration,
        window: Nanos::from_secs(5),
        seed,
        cold_start: opts.get("warm").is_none(),
        prewarm: opts.get("prewarm").is_some_and(|v| v == "true"),
        arrival,
        obs,
        faults,
        retry,
        ..Default::default()
    };
    eprintln!(
        "running {} on {} for {}...",
        workload.name,
        target.name(),
        duration
    );
    let rec = Engine::run(target.as_mut(), &workload, &config).map_err(|e| e.to_string())?;

    println!("target:     {}", target.name());
    println!("workload:   {}", workload.name);
    println!("ops:        {} ({} errors)", rec.ops, rec.errors);
    println!("throughput: {:.1} ops/s", rec.ops_per_sec());
    if let Some(h) = rec.hit_ratio {
        println!("hit ratio:  {h:.4}");
    }
    if let Some(open) = &rec.open_loop {
        let ms = |v: Option<Nanos>| match v {
            Some(n) => format!("{:.3} ms", n.as_secs_f64() * 1e3),
            None => "-".into(),
        };
        println!("arrival:    {}", open.arrival.label());
        println!(
            "offered:    {} ({} completed, {} failed, {} dropped)",
            open.offered, open.completed, open.failed, open.dropped
        );
        println!(
            "latency:    p50 {}  p99 {}  p999 {}",
            ms(open.p50),
            ms(open.p99),
            ms(open.p999)
        );
        println!(
            "queue:      max depth {} (drop ratio {:.4})",
            open.max_queue_depth,
            open.drop_ratio()
        );
    }
    if let Some(ledger) = &rec.ledger {
        println!("{}", ledger.render());
    }
    println!("regime:     {}", Regime::classify(&rec).label());
    println!();
    println!("latency profile (the number the paper wants you to show):");
    let lo = rec.histogram.min_bucket().unwrap_or(0);
    let hi = (rec.histogram.max_bucket().unwrap_or(24) + 2).min(40);
    print!("{}", rec.histogram.render_ascii(lo, hi, 44));
    println!();
    println!("throughput timeline:");
    let ys: Vec<f64> = rec.windows.iter().map(|w| w.ops_per_sec).collect();
    println!("  {}", rb_core::report::sparkline(&ys));
    if let Some(m) = &rec.metrics {
        println!();
        print!("{}", m.render_explain());
    }
    if let Some(path) = opts.get("trace-out") {
        let trace = rec
            .trace
            .as_ref()
            .ok_or("trace requested but the engine recorded none")?;
        write_trace(path, trace)?;
    }
    Ok(())
}

/// Parses `--faults SPEC` and `--retry POLICY` into an engine fault
/// plan. Malformed values come back as one-line errors — the CLI never
/// panics on bad fault syntax.
fn parse_faults(
    opts: &Opts,
) -> Result<(Option<rb_faults::FaultSpec>, rb_faults::RetryPolicy), String> {
    let faults = match opts.get("faults") {
        Some(f) => rb_faults::FaultSpec::parse_flag(f).map_err(|e| format!("--faults: {e}"))?,
        None => None,
    };
    let retry = match opts.get("retry") {
        Some(r) => rb_faults::RetryPolicy::parse(r).map_err(|e| format!("--retry: {e}"))?,
        None => rb_faults::RetryPolicy::None,
    };
    if faults.is_none() && retry != rb_faults::RetryPolicy::None && opts.get("faults").is_none() {
        return Err("--retry only applies with --faults".into());
    }
    Ok((faults, retry))
}

/// Splits a comma-separated flag value and parses each element.
fn parse_list<T>(s: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(parse)
        .collect()
}

fn parse_fs(name: &str) -> Result<FsKind, String> {
    match name {
        "ext2" => Ok(FsKind::Ext2),
        "ext3" => Ok(FsKind::Ext3),
        "xfs" => Ok(FsKind::Xfs),
        other => Err(format!("unknown fs {other:?}")),
    }
}

/// Builds the repetition protocol from `--protocol`, `--runs`, `--ci`,
/// `--min-runs`, `--max-runs` and `--confidence` via the shared
/// [`Protocol::from_flags`] parser. The fixed-protocol default of 3
/// runs matches `RunPlan::quick`'s smoke protocol.
fn parse_protocol(opts: &Opts) -> Result<Protocol, String> {
    let flags = rb_core::runner::ProtocolFlags {
        protocol: opts.get("protocol"),
        runs: opts.get("runs"),
        ci: opts.get("ci"),
        min_runs: opts.get("min-runs"),
        max_runs: opts.get("max-runs"),
        confidence: opts.get("confidence"),
    };
    Protocol::from_flags(&flags, 3)
}

/// Loads `--traces` files as sweep sources, each named by its file stem
/// and replayed under the shared `--trace-timing` policy.
fn parse_trace_sources(opts: &Opts) -> Result<Vec<TraceSource>, String> {
    let Some(spec) = opts.get("traces") else {
        return Ok(Vec::new());
    };
    let timing = match opts.get("trace-timing") {
        Some(t) => Timing::parse(t).map_err(|e| format!("--trace-timing: {e}"))?,
        None => Timing::Afap,
    };
    let sources = parse_list(spec, |path| {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trace = Trace::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_string();
        Ok(TraceSource::new(name, trace, timing))
    })?;
    // The stem is the cell identity; two files sharing one stem would
    // silently dedup to a single cell. Refuse instead.
    for (i, a) in sources.iter().enumerate() {
        if sources[..i].iter().any(|b| b.name == a.name) {
            return Err(format!(
                "duplicate trace name {:?} in --traces (cells are keyed by \
                 file stem); rename one of the files",
                a.name
            ));
        }
    }
    Ok(sources)
}

fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let traces = parse_trace_sources(opts)?;
    if opts.get("trace-timing").is_some() && traces.is_empty() {
        return Err("--trace-timing only applies with --traces".into());
    }
    // With trace sources and no explicit --workloads, sweep the traces
    // alone instead of silently adding the personality default.
    let workloads = match opts.get("workloads") {
        Some(w) => w,
        None if !traces.is_empty() => "",
        None => "randomread",
    };
    let personalities = parse_list(workloads, |w| {
        Personality::parse(w).ok_or_else(|| {
            let known: Vec<&str> = Personality::ALL.iter().map(|p| p.name()).collect();
            format!("unknown workload {w:?}; known: {}", known.join(","))
        })
    })?;
    let file_sizes = parse_list(opts.get("sizes").unwrap_or("64M,256M,768M"), parse_size)?;
    let file_counts = parse_list(opts.get("files").unwrap_or("100"), |f| {
        f.parse::<u64>()
            .map_err(|e| format!("bad file count {f:?}: {e}"))
    })?;
    let filesystems = parse_list(opts.get("fs").unwrap_or("ext2,ext3,xfs"), parse_fs)?;
    let cache_capacities = parse_list(opts.get("cache").unwrap_or("410M"), parse_size)?;
    let processes = parse_list(opts.get("processes").unwrap_or("1"), |p| {
        match p.parse::<u32>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!(
                "bad process count {p:?}; expected a positive integer"
            )),
        }
    })?;
    // Each --arrival entry is a single mode or a declarative rate
    // ladder (`poisson:1000..16000x2`) that expands into one rung per
    // rate; the grid dedup then treats every rung as its own axis value.
    let arrivals: Vec<Arrival> = parse_list(opts.get("arrival").unwrap_or("closed"), |a| {
        Arrival::parse_axis(a).map_err(|e| format!("--arrival: {e}"))
    })?
    .into_iter()
    .flatten()
    .collect();
    // The fault axis: commas separate axis values, `+` joins the
    // components of one plan (`none,slow-disk:4x+eio:1e-4` is two
    // cells: healthy, and slow-plus-flaky).
    let faults = match opts.get("faults") {
        Some(spec) => parse_list(spec, |f| {
            rb_faults::FaultSpec::parse_flag(&f.replace('+', ","))
                .map_err(|e| format!("--faults: {e}"))
        })?,
        None => Vec::new(),
    };
    let retry = match opts.get("retry") {
        Some(r) => rb_faults::RetryPolicy::parse(r).map_err(|e| format!("--retry: {e}"))?,
        None => rb_faults::RetryPolicy::None,
    };
    if retry != rb_faults::RetryPolicy::None && faults.iter().all(|f| f.is_none()) {
        return Err("--retry only applies with a faulted --faults axis".into());
    }
    let slo_p99 = opts
        .get("slo-p99")
        .map(|v| match v.trim().parse::<f64>() {
            Ok(ms) if ms > 0.0 => Ok(Nanos::from_secs_f64(ms / 1e3)),
            _ => Err(format!(
                "bad --slo-p99: {v:?} is not a positive latency in ms"
            )),
        })
        .transpose()?;
    if slo_p99.is_some() && !arrivals.iter().any(|a| a.is_open()) {
        return Err("--slo-p99 only applies with an open-loop --arrival".into());
    }
    let seed = opts
        .get("seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0);
    let mut plan = RunPlan::quick(seed);
    plan.protocol = parse_protocol(opts)?;
    // Opt-in flight-recorder columns; reports without the flag stay
    // byte-identical.
    plan.obs.metrics = opts.get("metrics").is_some_and(|v| v == "true");
    let run_budget = opts
        .get("budget")
        .map(|b| match b.parse::<u64>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("bad --budget: {b:?} is not a positive run count")),
        })
        .transpose()?;
    if let Some(d) = opts.get("duration") {
        plan.duration = parse_duration(d)?;
    }
    if let Some(w) = opts.get("window") {
        plan.window = parse_duration(w)?;
    }
    if let Some(j) = opts.get("jitter") {
        plan.cache_jitter = parse_size(j)?;
    }
    let jobs = match opts.get("jobs") {
        Some(j) => j.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?,
        None => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
    };
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    // Validate output options before burning minutes on the campaign.
    let format = opts.get("format").unwrap_or("ascii");
    if !matches!(format, "ascii" | "csv" | "json") {
        return Err(format!("unknown format {format:?}; use ascii|csv|json"));
    }
    // The content-addressed result store: finished cells stream to
    // `--store DIR` and unchanged cells are served from it on rerun.
    let store_dir = opts.get("store");
    let no_cache = opts.get("no-cache").is_some_and(|v| v == "true");
    let resume = opts.get("resume").is_some_and(|v| v == "true");
    if (no_cache || resume) && store_dir.is_none() {
        return Err("--no-cache and --resume require --store DIR".into());
    }
    if no_cache && resume {
        return Err("--no-cache contradicts --resume (resuming is cache hits)".into());
    }
    if resume {
        let dir = std::path::Path::new(store_dir.expect("checked: resume requires store"));
        if !rb_core::store::ResultStore::exists(dir) {
            return Err(format!(
                "nothing to resume: {} holds no store manifest",
                dir.display()
            ));
        }
    }
    let campaign_opts = CampaignOptions {
        store: store_dir.map(|dir| StoreOptions {
            dir: dir.into(),
            read_cache: !no_cache,
        }),
    };
    let spec = SweepSpec {
        name: opts.get("name").unwrap_or("sweep").to_string(),
        personalities,
        traces,
        file_sizes,
        file_counts,
        filesystems,
        cache_capacities,
        processes,
        arrivals,
        faults,
        retry,
        slo_p99,
        plan,
        device: parse_size(opts.get("device").unwrap_or("2G"))?,
        run_budget,
    };
    let n_cells = spec.expand().len();
    eprintln!(
        "sweeping {} cells under {} on {} worker(s)...",
        n_cells, spec.plan.protocol, jobs
    );
    let run = run_campaign_with(&spec, jobs, &campaign_opts).map_err(|e| e.to_string())?;
    if let Some(dir) = store_dir {
        // Machine-parseable accounting line: the resume-smoke CI job
        // asserts `executed=0` on a warm rerun.
        eprintln!(
            "store: cells={} cached={} executed={} ({dir})",
            run.stats.expanded, run.stats.cached, run.stats.executed
        );
    }
    let report = run.report;
    let rendered = match format {
        "csv" => report.to_csv(),
        "json" => report.to_json().to_string(),
        _ => report.render(),
    };
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Runs one cell with the flight recorder on and renders the
/// explain-your-number report: every layer's contribution to the
/// throughput/latency figure, with the parts shown summing back to the
/// recorded totals.
fn cmd_explain(opts: &Opts) -> Result<(), String> {
    let target_spec = opts.get("target").unwrap_or("sim:ext2");
    let workload_name = opts.get("workload").unwrap_or("fileserver");
    let size = parse_size(opts.get("size").unwrap_or("64M"))?;
    let files = opts
        .get("files")
        .map(|f| f.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(100);
    let duration = parse_duration(opts.get("duration").unwrap_or("15s"))?;
    let seed = opts
        .get("seed")
        .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0);
    // Default to 4 processes: contention is what makes the latency
    // decomposition informative. `--processes 1` explains the serial
    // engine instead (layer counters only).
    let processes = opts
        .get("processes")
        .map(|p| match p.parse::<u32>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!(
                "bad process count {p:?}; expected a positive integer"
            )),
        })
        .transpose()?
        .unwrap_or(4);
    let arrival = match opts.get("arrival") {
        Some(a) => Arrival::parse(a).map_err(|e| format!("--arrival: {e}"))?,
        None => Arrival::Closed,
    };
    let device = Bytes::new((size.as_u64() * 3).max(Bytes::gib(1).as_u64()));
    let mut target = make_target(target_spec, device, seed)?;
    let workload = make_workload(workload_name, size, files)?;
    let config = EngineConfig {
        duration,
        window: Nanos::from_secs(5),
        seed,
        cold_start: opts.get("warm").is_none(),
        prewarm: opts.get("prewarm").is_some_and(|v| v == "true"),
        processes,
        arrival,
        obs: ObsConfig {
            metrics: true,
            trace: None,
        },
        ..Default::default()
    };
    eprintln!(
        "explaining {} on {} ({} process(es), {})...",
        workload.name,
        target.name(),
        processes,
        duration
    );
    let rec = Engine::run(target.as_mut(), &workload, &config).map_err(|e| e.to_string())?;
    println!("target:     {}", target.name());
    println!("workload:   {}", workload.name);
    println!(
        "throughput: {:.1} ops/s ({} ops, {} errors)",
        rec.ops_per_sec(),
        rec.ops,
        rec.errors
    );
    println!();
    let m = rec
        .metrics
        .ok_or("the run produced no metrics snapshot (recorder off?)")?;
    print!("{}", m.render_explain());
    Ok(())
}

fn cmd_nano(opts: &Opts) -> Result<(), String> {
    let kind = parse_fs(opts.get("fs").unwrap_or("ext2"))?;
    let config = if opts.get("quick").is_some_and(|v| v == "true") {
        NanoConfig::quick()
    } else {
        NanoConfig::default()
    };
    let report = rb_core::nano::run_suite(kind, &config).map_err(|e| e.to_string())?;
    print!("{}", rb_core::nano::render_report(&report));
    Ok(())
}

fn cmd_table1() -> Result<(), String> {
    print!("{}", render_table1(&table1()));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let sub = args.first().map(String::as_str).unwrap_or("");
    let opts = Opts::parse(&args[1.min(args.len())..])?;
    match sub {
        "record" => {
            let out = opts.get("out").ok_or("trace record needs --out FILE")?;
            let workload_name = opts.get("workload").unwrap_or("varmail");
            let size = parse_size(opts.get("size").unwrap_or("8M"))?;
            let duration = parse_duration(opts.get("duration").unwrap_or("5s"))?;
            let workload = make_workload(workload_name, size, 25)?;
            let mut target = rb_core::testbed::paper_ext2(Bytes::gib(1), 0);
            let mut recorder = Recorder::new(&mut target);
            let config = EngineConfig {
                duration,
                window: Nanos::from_secs(1),
                seed: 0,
                cold_start: false,
                prewarm: false,
                ..Default::default()
            };
            Engine::run(&mut recorder, &workload, &config).map_err(|e| e.to_string())?;
            let trace = recorder.finish();
            let text = trace.to_text().map_err(|e| e.to_string())?;
            std::fs::write(out, text).map_err(|e| e.to_string())?;
            println!(
                "recorded {} ops ({}) to {out}",
                trace.len(),
                trace.version.label()
            );
            Ok(())
        }
        "replay" => {
            let input = opts.get("in").ok_or("trace replay needs --in FILE")?;
            let target_spec = opts.get("target").unwrap_or("sim:ext2");
            let timing = match opts.get("timing") {
                Some(t) => Timing::parse(t).map_err(|e| format!("--timing: {e}"))?,
                None => Timing::Afap,
            };
            let seed = opts
                .get("seed")
                .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(0);
            let text = std::fs::read_to_string(input).map_err(|e| e.to_string())?;
            let trace = Trace::from_text(&text).map_err(|e| e.to_string())?;
            let mut target = make_target(target_spec, Bytes::gib(1), 0)?;
            let result = replay_with(target.as_mut(), &trace, &ReplayConfig { timing, seed });
            println!(
                "replayed {} ops ({} errors) in {} on {}",
                result.ops,
                result.errors,
                result.duration,
                target.name()
            );
            // A failing replay must fail the command: the summary above
            // is printed either way, but CI scripting needs the exit
            // code — and the operator needs to know *what* failed first.
            match result.first_error {
                Some(first) if result.errors > 0 => Err(format!(
                    "replay finished with {} failed op(s); first failure: {first}",
                    result.errors
                )),
                _ => Ok(()),
            }
        }
        "stats" => {
            let input = opts.get("in").ok_or("trace stats needs --in FILE")?;
            let text = std::fs::read_to_string(input).map_err(|e| e.to_string())?;
            let trace = Trace::from_text(&text).map_err(|e| e.to_string())?;
            print!("{}", characterize(&trace).render());
            Ok(())
        }
        "transform" => {
            let input = opts.get("in").ok_or("trace transform needs --in FILE")?;
            let out = opts.get("out").ok_or("trace transform needs --out FILE")?;
            let text = std::fs::read_to_string(input).map_err(|e| e.to_string())?;
            let mut trace = Trace::from_text(&text).map_err(|e| e.to_string())?;
            let before = trace.len();
            if let Some(extra) = opts.get("merge") {
                let mut traces = vec![trace];
                for path in extra.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    traces.push(Trace::from_text(&text).map_err(|e| format!("{path}: {e}"))?);
                }
                trace = merge(&traces);
            }
            let mut pipeline = Vec::new();
            if let Some(verbs) = opts.get("keep-ops") {
                pipeline.push(Transform::KeepOps(
                    verbs.split(',').map(|v| v.trim().to_string()).collect(),
                ));
            }
            if let Some(prefix) = opts.get("keep-prefix") {
                pipeline.push(Transform::KeepPrefix(prefix.to_string()));
            }
            if let Some(remap) = opts.get("remap") {
                let (from, to) = remap
                    .split_once('=')
                    .ok_or_else(|| format!("bad --remap {remap:?}; expected FROM=TO"))?;
                pipeline.push(Transform::Remap {
                    from: from.to_string(),
                    to: to.to_string(),
                });
            }
            if let Some(clones) = opts.get("scale") {
                let clones = clones
                    .parse::<u32>()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                pipeline.push(Transform::Scale { clones });
            }
            let transformed =
                rb_core::trace::apply(&trace, &pipeline).map_err(|e| e.to_string())?;
            let text = transformed.to_text().map_err(|e| e.to_string())?;
            std::fs::write(out, text).map_err(|e| e.to_string())?;
            println!(
                "transformed {} -> {} ops ({}) to {out}",
                before,
                transformed.len(),
                transformed.version.label()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown trace subcommand {other:?}; use record|replay|stats|transform"
        )),
    }
}

fn usage() -> &'static str {
    "rocketbench — statistically rigorous file system benchmarking

USAGE:
  rocketbench bench  [--target sim:ext2|sim:ext3|sim:xfs|real:<dir>]
                     [--workload randomread|seqread|randomwrite|webserver|
                                 fileserver|varmail|postmark|metadata]
                     [--size 64M] [--files 100] [--duration 30s]
                     [--seed 0] [--prewarm true] [--warm true]
                     [--arrival closed|poisson:RATE|bursty:RATE|diurnal:RATE]
                     [--faults slow-disk:4x,eio:1e-4,...] [--retry none|bounded:N|continue]
                     [--metrics true] [--trace-out FILE] [--trace-sample N]
  rocketbench explain [--target sim:ext2|...] [--workload fileserver|...]
                     [--size 64M] [--files 100] [--duration 15s]
                     [--processes 4] [--seed 0] [--prewarm true] [--warm true]
                     [--arrival closed|poisson:RATE|...]
  rocketbench sweep  [--workloads randomread,varmail,...] [--sizes 64M,256M,768M]
                     [--files 100,1000] [--fs ext2,ext3,xfs] [--cache 410M,256M]
                     [--processes 1,2,4,8]
                     [--arrival closed,poisson:RATE,poisson:LO..HIxF,...]
                     [--faults none,slow-disk:4x+eio:1e-4,...]
                     [--retry none|bounded:N|continue]
                     [--slo-p99 MS]
                     [--traces a.trace,b.trace] [--trace-timing afap|faithful|scaled=N]
                     [--protocol fixed|adaptive] [--runs 3]
                     [--ci 2%] [--min-runs 5] [--max-runs 30]
                     [--confidence 95%] [--budget RUNS]
                     [--duration 15s] [--window 3s] [--jitter 3M]
                     [--jobs N] [--seed 0] [--device 2G] [--name NAME]
                     [--format ascii|csv|json] [--out FILE] [--metrics true]
                     [--store DIR] [--no-cache true] [--resume true]
  rocketbench nano   [--fs ext2|ext3|xfs] [--quick true]
  rocketbench table1
  rocketbench trace  record --out FILE [--workload varmail] [--duration 5s]
  rocketbench trace  replay --in FILE [--target sim:xfs]
                     [--timing afap|faithful|scaled=N] [--seed 0]
  rocketbench trace  stats --in FILE
  rocketbench trace  transform --in FILE --out FILE [--merge FILE2,...]
                     [--keep-ops read,write] [--keep-prefix /mail]
                     [--remap /mail=/spool] [--scale CLONES]
  rocketbench version | --version
  rocketbench help

`sweep` runs the declarative campaign engine: the cross product of
--workloads x --sizes (or --files for fileset workloads) x --fs x
--cache x --processes, each cell run under the chosen protocol with
per-cell deterministic seeds, sharded over --jobs worker threads.
--processes is the paper's scaling dimension: cells above 1 drive that
many closed-loop workers through the discrete-event scheduler
(contending for cores and the shared disk) and reports grow a
`processes` column; cells at 1 run the classic serial engine with
byte-identical output. --arrival adds the open-loop dimension: cells
with poisson:RATE / bursty:RATE / diurnal:RATE offer RATE ops/s from a
seeded arrival process into a bounded queue regardless of completions —
the regime where queueing delay (and the latency hockey stick) is
visible — and reports grow arrival/offered/dropped/p50/p99/p999
columns; closed cells keep byte-identical pre-axis output. With
--slo-p99 MS every open cell also reports the maximum offered load
sustaining p99 <= MS, found by deterministic bisection over the rate.
--faults adds the robustness dimension: each axis value is a fault plan
(none = healthy; `+` joins components of one plan, e.g.
slow-disk:4x+eio:1e-4; components are slow-disk:Nx, stall:EVERY/DUR,
eio:P, eio-sticky:P, enospc:PCT%, crash:DUR) injected deterministically
from the cell seed, with --retry choosing how engines respond (none =
abort on error, bounded:N = up to N retries with virtual-time backoff,
continue = drop the op and move on). Faulted reports grow a faults
column plus the outcome ledger (attempted = ok + retried-ok + gave-up +
dropped) and a crash verdict; healthy cells keep byte-identical
pre-axis output. See docs/FAULTS.md.
An --arrival entry may also be a rate ladder KIND:LO..HIxF — the
geometric sequence LO, LO*F, ... capped at HI, each rung its own axis
value (poisson:1000..16000x2 is five cells per grid point).
Trace files given via --traces become
additional cells (trace x fs x cache), each replayed under
--trace-timing with verdict/CI columns like any other cell; with
--traces and no --workloads, only the traces sweep.

--store DIR streams every finished cell to a content-addressed result
store (one fsync'd record per cell plus an append-only manifest) and
serves unchanged cells from it on rerun: a warm rerun of an unchanged
sweep executes 0 cells, and editing one axis value re-executes only the
new column of the grid. Records are addressed by a hash of (cell key,
campaign seed, protocol, code-version salt), verified on load, and
report bytes are identical whether cells came from cache or live runs.
--no-cache true executes everything but still refreshes the store;
--resume true picks an interrupted campaign back up from the same
store. See docs/CAMPAIGNS.md.

The flight recorder is opt-in everywhere and never perturbs a run.
`bench --metrics true` appends the per-layer breakdown to the report;
`bench --trace-out FILE` writes sampled op lifecycles (arrive -> issue
-> cpu -> device -> done) as Chrome trace-event JSON, loadable in
Perfetto or chrome://tracing, with `--trace-sample N` keeping every
N-th op. `explain` runs one cell with metrics on and reports where the
number came from: cache hit ratio, device busy share, and the exact
latency decomposition (core wait / think / cpu / queue wait / device)
summing back to the recorded total. `sweep --metrics true` adds
dev_busy_pct / qwait_pct / seeks / journal_commits / writeback_flushed
columns to CSV and a `metrics` object to JSON.

`trace` makes workloads portable artifacts: `record` captures any
workload run as a v2 trace (ops stamped with stream ids and relative
timestamps; the parser still reads v1), `replay` executes one under a
timing policy (afap = peak capacity, faithful = the recorded load,
scaled=N = temporal what-if) and exits non-zero if any op fails,
`stats` prints the characterization report (op mix, working set,
sequentiality, inter-arrival histogram), and `transform` derives new
scenarios (merge, filter, remap, spatial scale) from captured ones.

  --protocol fixed     exactly --runs repetitions per cell (default 3)
  --protocol adaptive  convergence-driven: at least --min-runs, stop as
                       soon as the bootstrap CI on the mean is narrower
                       than --ci (relative, at --confidence), give up at
                       --max-runs; every cell reports a verdict
                       (converged | max-runs | mixed-regime)
  --budget RUNS        shared run budget, divided evenly across cells

The report carries per-cell run counts, bootstrap CIs and verdicts in
all formats, groups results by the paper's Section 2 dimensions, and is
byte-identical at any --jobs value.

Paper-figure regenerators live in rb-bench:
  cargo run -p rb-bench --release --bin fig1|fig1zoom|fig2|fig3|fig4|scaling
  (fig1/fig1zoom accept --jobs N and run as sharded campaigns)
"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("help", &[] as &[String]),
    };
    let result = match cmd {
        "bench" => Opts::parse(rest).and_then(|o| cmd_bench(&o)),
        "explain" => Opts::parse(rest).and_then(|o| cmd_explain(&o)),
        "sweep" => Opts::parse(rest).and_then(|o| cmd_sweep(&o)),
        "nano" => Opts::parse(rest).and_then(|o| cmd_nano(&o)),
        "table1" => cmd_table1(),
        "trace" => cmd_trace(rest),
        "version" | "--version" | "-V" => {
            println!("rocketbench {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_size_units() {
        assert_eq!(parse_size("4096").unwrap(), Bytes::new(4096));
        assert_eq!(parse_size("8K").unwrap(), Bytes::kib(8));
        assert_eq!(parse_size("64M").unwrap(), Bytes::mib(64));
        assert_eq!(parse_size("2G").unwrap(), Bytes::gib(2));
        assert!(parse_size("x").is_err());
        assert!(parse_size("12Q").is_err());
    }

    #[test]
    fn parse_duration_units() {
        assert_eq!(parse_duration("90").unwrap(), Nanos::from_secs(90));
        assert_eq!(parse_duration("30s").unwrap(), Nanos::from_secs(30));
        assert_eq!(parse_duration("5m").unwrap(), Nanos::from_secs(300));
        assert!(parse_duration("abc").is_err());
    }

    #[test]
    fn opts_parser() {
        let o = Opts::parse(&["--size".into(), "64M".into(), "--seed".into(), "7".into()]).unwrap();
        assert_eq!(o.get("size"), Some("64M"));
        assert_eq!(o.get("seed"), Some("7"));
        assert_eq!(o.get("missing"), None);
        assert!(Opts::parse(&["oops".into()]).is_err());
        assert!(Opts::parse(&["--dangling".into()]).is_err());
    }

    #[test]
    fn parse_list_splits_and_trims() {
        let sizes = parse_list("64M, 256M ,1G", parse_size).unwrap();
        assert_eq!(sizes, vec![Bytes::mib(64), Bytes::mib(256), Bytes::gib(1)]);
        let fs = parse_list("ext2,xfs", parse_fs).unwrap();
        assert_eq!(fs, vec![FsKind::Ext2, FsKind::Xfs]);
        assert!(parse_list("ext2,zfs", parse_fs).is_err());
        assert!(parse_list("", parse_fs).unwrap().is_empty());
    }

    fn opts(pairs: &[(&str, &str)]) -> Opts {
        let mut flags = std::collections::HashMap::new();
        for (k, v) in pairs {
            flags.insert(k.to_string(), v.to_string());
        }
        Opts { flags }
    }

    #[test]
    fn parse_percent_forms() {
        assert!((Protocol::parse_percent("2%").unwrap() - 0.02).abs() < 1e-12);
        assert!((Protocol::parse_percent("2").unwrap() - 0.02).abs() < 1e-12);
        assert!((Protocol::parse_percent("0.5%").unwrap() - 0.005).abs() < 1e-12);
        assert!(Protocol::parse_percent("0").is_err());
        assert!(Protocol::parse_percent("100").is_err());
        assert!(Protocol::parse_percent("x%").is_err());
    }

    #[test]
    fn protocol_defaults_to_fixed() {
        assert_eq!(parse_protocol(&opts(&[])).unwrap(), Protocol::FixedRuns(3));
        assert_eq!(
            parse_protocol(&opts(&[("runs", "7")])).unwrap(),
            Protocol::FixedRuns(7)
        );
        assert!(parse_protocol(&opts(&[("runs", "0")])).is_err());
    }

    #[test]
    fn protocol_adaptive_flags() {
        let p = parse_protocol(&opts(&[
            ("protocol", "adaptive"),
            ("ci", "2%"),
            ("max-runs", "30"),
        ]))
        .unwrap();
        assert_eq!(
            p,
            Protocol::Adaptive {
                min_runs: 5,
                max_runs: 30,
                ci_rel_width: 0.02,
                confidence: 0.95,
            }
        );
        // One-line errors, never panics.
        assert!(parse_protocol(&opts(&[("protocol", "magic")])).is_err());
        assert!(parse_protocol(&opts(&[("protocol", "adaptive"), ("ci", "banana")])).is_err());
        assert!(parse_protocol(&opts(&[("protocol", "adaptive"), ("runs", "5")])).is_err());
        assert!(parse_protocol(&opts(&[("ci", "2%")])).is_err());
        assert!(parse_protocol(&opts(&[
            ("protocol", "adaptive"),
            ("min-runs", "9"),
            ("max-runs", "3"),
        ]))
        .is_err());
    }

    #[test]
    fn trace_sources_parse_from_files() {
        let dir = std::env::temp_dir().join(format!("rb-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mailspool.trace");
        std::fs::write(&path, "# rocketbench-trace v1\ncreate /a\nstat /a\n").unwrap();
        let path = path.to_str().unwrap().to_string();

        let none = parse_trace_sources(&opts(&[])).unwrap();
        assert!(none.is_empty());
        let sources = parse_trace_sources(&opts(&[("traces", &path)])).unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].name, "mailspool");
        assert_eq!(sources[0].timing, Timing::Afap);
        assert_eq!(sources[0].trace.len(), 2);
        let timed =
            parse_trace_sources(&opts(&[("traces", &path), ("trace-timing", "scaled=4")])).unwrap();
        assert_eq!(timed[0].timing, Timing::Scaled { factor: 4.0 });
        // Two files sharing a stem would collapse into one cell; refuse.
        let twin_dir = dir.join("twin");
        std::fs::create_dir_all(&twin_dir).unwrap();
        let twin = twin_dir.join("mailspool.trace");
        std::fs::write(&twin, "create /b\n").unwrap();
        let both = format!("{},{}", path, twin.display());
        let err = parse_trace_sources(&opts(&[("traces", &both)])).unwrap_err();
        assert!(err.contains("duplicate trace name"), "{err}");
        // Bad inputs are one-line errors.
        assert!(parse_trace_sources(&opts(&[("traces", "/no/such/file")])).is_err());
        assert!(
            parse_trace_sources(&opts(&[("traces", &path), ("trace-timing", "warp")])).is_err()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn target_and_workload_factories() {
        assert!(make_target("sim:ext2", Bytes::gib(1), 0).is_ok());
        assert!(make_target("sim:zfs", Bytes::gib(1), 0).is_err());
        assert!(make_target("bogus", Bytes::gib(1), 0).is_err());
        assert!(make_workload("varmail", Bytes::mib(1), 10).is_ok());
        assert!(make_workload("nope", Bytes::mib(1), 10).is_err());
    }
}
