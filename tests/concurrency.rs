//! End-to-end tests for the concurrency dimension: the discrete-event
//! process scheduler, the campaign `processes` axis, and overlapped
//! multi-stream replay.
//!
//! The load-bearing properties, in the repo's usual order of
//! importance: (1) `processes = 1` is the classic serial engine and
//! perturbs nothing — not even when the axis is swept alongside
//! concurrent cells; (2) every multi-process schedule is a pure
//! function of (workload, config, seed), independent of `--jobs`;
//! (3) the contention model produces the physics the paper's fifth
//! dimension describes.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::prelude::*;
use rocketbench::core::testbed;
use rocketbench::core::trace::{replay_with, ReplayConfig};
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn quick_cfg(secs: u64, seed: u64, processes: u32) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(secs),
        window: Nanos::from_secs(1),
        seed,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.0,
        max_errors: 100,
        processes,
        cores: 4,
        arrival: Arrival::Closed,
        obs: ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    }
}

/// The golden small-sweep spec plus a concurrency axis.
fn sweep_with_processes(processes: Vec<u32>) -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        processes,
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::gib(2),
        run_budget: None,
    }
}

/// Sweeping the concurrency axis must not perturb the serial cells:
/// every `processes = 1` row of the widened CSV, with the inserted
/// `processes` column removed, is byte-identical to the committed
/// pre-axis golden rows (same seeds, same samples, same spreads).
#[test]
fn serial_cells_survive_the_axis_unchanged() {
    let report = run_campaign(&sweep_with_processes(vec![1, 4]), 2).expect("sweep");
    let csv = report.to_csv();
    let strip_processes_column = |line: &str| -> String {
        let mut fields: Vec<&str> = line.split(',').collect();
        fields.remove(5);
        fields.join(",")
    };
    let mut lines = csv.lines();
    let header = strip_processes_column(lines.next().expect("header"));
    let serial_rows: Vec<String> = lines
        .filter(|l| l.split(',').nth(5) == Some("1"))
        .map(strip_processes_column)
        .collect();
    let golden_csv = golden("sweep_small.csv");
    let mut golden_lines = golden_csv.lines();
    assert_eq!(header, golden_lines.next().expect("golden header"));
    let golden_rows: Vec<String> = golden_lines.map(str::to_string).collect();
    assert_eq!(
        serial_rows, golden_rows,
        "processes=1 cells drifted once the axis was swept"
    );
}

/// A spec whose axis is explicitly `[1]` keeps the exact pre-axis
/// report bytes: no `processes` column, identical CSV.
#[test]
fn explicit_serial_axis_is_byte_identical_to_golden() {
    let report = run_campaign(&sweep_with_processes(vec![1]), 3).expect("sweep");
    assert!(!report.sweeps_processes());
    assert_eq!(report.to_csv(), golden("sweep_small.csv"));
}

/// Multi-process campaigns are byte-identical at any worker count and
/// across repetitions: the interleaving is the scheduler's, never the
/// host's.
#[test]
fn process_axis_is_jobs_deterministic() {
    let spec = sweep_with_processes(vec![1, 2, 8]);
    let serial = run_campaign(&spec, 1).expect("jobs=1");
    let sharded = run_campaign(&spec, 4).expect("jobs=4");
    assert_eq!(serial.cells.len(), 12); // 2 personalities x 2 fs x 3 procs
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
    let again = run_campaign(&spec, 4).expect("repeat");
    assert_eq!(sharded.to_csv(), again.to_csv());
}

/// Seed-determinism and seed-sensitivity of a single multi-process run.
#[test]
fn scheduled_runs_are_seed_deterministic() {
    let run = |seed: u64| {
        let mut t = testbed::paper_ext2(Bytes::gib(1), seed);
        let w = personalities::fileserver(30);
        let rec = Engine::run(&mut t, &w, &quick_cfg(3, seed, 4)).unwrap();
        (rec.ops, rec.errors, rec.duration, rec.histogram.clone())
    };
    assert_eq!(run(11), run(11));
    let a = run(11);
    let b = run(12);
    assert_ne!((a.0, a.3), (b.0, b.3), "seed had no effect");
}

/// The contention physics: a memory-bound workload gains real
/// throughput from more processes (cores parallelize), while the same
/// workload under a crushed cache gains almost nothing (the spindle
/// serializes).
#[test]
fn cores_parallelize_and_the_device_serializes() {
    let throughput = |cache_mib: u64, processes: u32| {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        t.set_cache_capacity_pages(Bytes::mib(cache_mib).as_u64() / 4096);
        let w = personalities::random_read(Bytes::mib(32));
        let rec = Engine::run(&mut t, &w, &quick_cfg(3, 7, processes)).unwrap();
        rec.ops_per_sec()
    };
    // In memory: 4 processes on 4 cores approach 4x.
    let mem1 = throughput(410, 1);
    let mem4 = throughput(410, 4);
    assert!(
        mem4 > mem1 * 3.0,
        "memory-bound 4p speedup only {:.2}x",
        mem4 / mem1
    );
    // On disk: the shared device refuses to scale.
    let disk1 = throughput(4, 1);
    let disk4 = throughput(4, 4);
    assert!(
        disk4 < disk1 * 1.6,
        "disk-bound 4p speedup {:.2}x?!",
        disk4 / disk1
    );
}

/// Multi-process runs demand a time-parameterized target; targets that
/// cannot decouple execution from their clock fail with a clear error
/// instead of producing bogus timings.
#[test]
fn untimed_targets_refuse_multi_process_runs() {
    let dir = std::env::temp_dir().join(format!("rb-conc-{}", std::process::id()));
    let mut t = RealFsTarget::new(&dir).unwrap();
    let w = personalities::random_read(Bytes::kib(64));
    let err = Engine::run(&mut t, &w, &quick_cfg(1, 0, 2)).unwrap_err();
    assert!(
        err.to_string().contains("time-parameterized"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A two-stream trace with recorded gaps, safe on a fresh target.
fn two_stream_trace() -> Trace {
    Trace::from_text(
        "# rocketbench-trace v2\n\
         0 0 mkdir /t\n\
         0 1000000 create /t/a\n\
         1 2000000 create /t/b\n\
         0 3000000 setsize /t/a 1048576\n\
         1 4000000 setsize /t/b 1048576\n\
         0 5000000 write /t/a 0 65536\n\
         1 6000000 write /t/b 0 65536\n\
         0 7000000 read /t/a 0 65536\n\
         1 8000000 read /t/b 0 65536\n\
         0 9000000 fsync /t/a\n\
         1 10000000 fsync /t/b\n\
         0 11000000 close /t/a\n\
         1 12000000 close /t/b\n",
    )
    .unwrap()
}

/// Timed multi-stream replay on the simulated stack runs through the
/// overlapped engine: clean, deterministic, and never faster than the
/// recorded span.
#[test]
fn overlapped_faithful_replay_is_deterministic_and_honours_the_span() {
    let trace = two_stream_trace();
    let span = trace.span();
    let run = |seed: u64| {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 3);
        let r = replay_with(
            &mut t,
            &trace,
            &ReplayConfig {
                timing: Timing::Faithful,
                seed,
            },
        );
        assert_eq!(r.errors, 0, "{:?}", r.first_error);
        assert_eq!(r.ops, trace.len() as u64);
        assert!(r.duration >= span, "{} < recorded span {span}", r.duration);
        (r.duration, r.histogram)
    };
    assert_eq!(run(1), run(1));
}

/// Overlap is real: two heavy *independent* streams replayed
/// faithfully finish sooner than the same operations serialized into
/// one stream, because their in-memory phases genuinely interleave.
#[test]
fn independent_streams_overlap_under_faithful_timing() {
    // Build the one-stream serialization of the two-stream trace:
    // identical entries, all on stream 0, same timestamps.
    let two = two_stream_trace();
    let mut one = two.clone();
    for e in &mut one.entries {
        e.stream = 0;
    }
    one.normalize_version();
    let replay_duration = |trace: &Trace| {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 3);
        let r = replay_with(
            &mut t,
            trace,
            &ReplayConfig {
                timing: Timing::Faithful,
                seed: 0,
            },
        );
        assert_eq!(r.errors, 0, "{:?}", r.first_error);
        r.duration
    };
    let overlapped = replay_duration(&two);
    let serialized = replay_duration(&one);
    assert!(
        overlapped <= serialized,
        "overlap slower than serialization: {overlapped} > {serialized}"
    );
}

/// As-fast-as-possible replay never routes through the overlap engine,
/// even for multi-stream traces — the classic seeded merge stays in
/// charge (pinned against the committed snapshot in
/// tests/golden_outputs.rs; this checks the dispatch itself).
#[test]
fn afap_replay_keeps_the_serialized_merge() {
    let trace = two_stream_trace();
    // The same trace with every timestamp stretched 1000x (span 12 s).
    let mut stretched = trace.clone();
    for e in &mut stretched.entries {
        e.at = e.at * 1000;
    }
    let afap = |trace: &Trace| {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 3);
        let r = replay_with(&mut t, trace, &ReplayConfig::default());
        assert_eq!(r.errors, 0);
        r.duration
    };
    // Afap ignores timestamps entirely, so the stretched trace replays
    // in exactly the same virtual time; the overlapped engine never
    // would (its issue times respect the 12 s of due times).
    let d = afap(&trace);
    assert_eq!(d, afap(&stretched));
    assert!(d < stretched.span());
}
