//! Byte-identity regression tests for the zero-alloc op pipeline.
//!
//! The interned-path + FNV-hashing refactor (PR 4) must not change a
//! single output byte: these tests regenerate the quick Figure 1
//! campaign, the figreplay table, a small sweep campaign and an afap
//! replay, and diff them against snapshots captured from the
//! pre-refactor binaries (committed under `tests/golden/`). Any change
//! to simulated timing, scheduling, seeding or rendering shows up here
//! as a diff — the same discipline PRs 2 and 3 used for their
//! refactors.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::figures::{fig1_campaign, render_fig1, Fig1Config};
use rocketbench::core::prelude::*;
use rocketbench::core::testbed;
use rocketbench::core::trace::{apply, replay_with, ReplayConfig, Transform};
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;
use std::fmt::Write as _;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn repo_file(name: &str) -> String {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn fig1_quick_is_byte_identical_at_any_jobs() {
    let expected = golden("fig1_quick.txt");
    for jobs in [1, 2] {
        let data = fig1_campaign(&Fig1Config::quick(), jobs).expect("fig1 quick");
        assert_eq!(
            render_fig1(&data),
            expected,
            "fig1 --quick output drifted at jobs={jobs}; the refactor \
             changed simulated behaviour"
        );
    }
}

#[test]
fn figreplay_quick_is_byte_identical() {
    // Reproduces crates/bench/src/bin/figreplay.rs with --quick, minus
    // the results-file line.
    let duration = Nanos::from_secs(2);
    let mut origin = testbed::paper_ext2(Bytes::gib(1), 7);
    let mut recorder = Recorder::new(&mut origin);
    let workload = personalities::varmail(25);
    let config = EngineConfig {
        duration,
        window: Nanos::from_secs(1),
        seed: 7,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    Engine::run(&mut recorder, &workload, &config).expect("record");
    let trace = recorder.finish();
    let profile = rocketbench::core::trace::characterize(&trace);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "recorded {} ops, span {}, working set {}:",
        trace.len(),
        trace.span(),
        profile.working_set
    );
    out.push_str(&profile.render());
    out.push('\n');

    let policies = [
        Timing::Afap,
        Timing::Faithful,
        Timing::Scaled { factor: 4.0 },
    ];
    let mut rows = Vec::new();
    let mut throughputs: Vec<Vec<f64>> = Vec::new();
    for timing in policies {
        let mut policy_tp = Vec::new();
        for fs in FsKind::ALL {
            let mut target = testbed::paper_fs(fs, Bytes::gib(1), 7);
            let result = replay_with(&mut target, &trace, &ReplayConfig { timing, seed: 7 });
            let hit = target.cache_hit_ratio().unwrap_or(0.0);
            policy_tp.push(result.ops_per_sec());
            rows.push(vec![
                timing.label(),
                fs.name().to_string(),
                format!("{}", result.duration),
                format!("{:.0}", result.ops_per_sec()),
                format!("{hit:.3}"),
                format!("{}", result.errors),
            ]);
        }
        throughputs.push(policy_tp);
    }
    let _ = writeln!(out, "one trace, three timing policies, three file systems:");
    out.push_str(&rocketbench::core::report::text_table(
        &["timing", "fs", "duration", "ops/s", "hits", "errors"],
        &rows,
    ));
    out.push('\n');
    for (timing, tp) in policies.iter().zip(&throughputs) {
        let max = tp.iter().cloned().fold(f64::MIN, f64::max);
        let min = tp.iter().cloned().fold(f64::MAX, f64::min);
        let _ = writeln!(
            out,
            "{:>10}: between-fs throughput spread {:.2}x",
            timing.label(),
            max / min.max(1e-9)
        );
    }
    assert_eq!(
        out,
        golden("figreplay_quick.txt"),
        "figreplay --quick output drifted"
    );
}

/// The small sweep the snapshot was captured from:
/// `rocketbench sweep --workloads randomread,varmail --sizes 16M
///  --files 25 --fs ext2,xfs --cache 32M --duration 2s --runs 2`.
fn small_sweep_spec() -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::gib(2),
        run_budget: None,
    }
}

#[test]
fn sweep_csv_is_byte_identical_at_any_jobs() {
    let expected = golden("sweep_small.csv");
    for jobs in [1, 3] {
        let report = run_campaign(&small_sweep_spec(), jobs).expect("sweep");
        assert_eq!(
            report.to_csv(),
            expected,
            "sweep CSV drifted at jobs={jobs}"
        );
    }
}

#[test]
fn afap_replay_of_scaled_golden_trace_is_byte_identical() {
    // `rocketbench trace transform --scale 32` + `trace replay --timing
    // afap` on the golden v2 trace, as one summary line.
    let trace = Trace::from_text(&repo_file("golden_v2.trace")).expect("parses");
    let scaled = apply(&trace, &[Transform::Scale { clones: 32 }]).expect("scale");
    let mut target = testbed::paper_fs(FsKind::Ext2, Bytes::gib(1), 0);
    let result = replay_with(
        &mut target,
        &scaled,
        &ReplayConfig {
            timing: Timing::Afap,
            seed: 0,
        },
    );
    let line = format!(
        "replayed {} ops ({} errors) in {} on {}\n",
        result.ops,
        result.errors,
        result.duration,
        target.name()
    );
    assert_eq!(line, golden("replay_x32.txt"), "replay outcome drifted");
}
