//! The PR 9 robustness battery: deterministic fault plans end to end.
//!
//! Six disciplines, per the fault-axis contract:
//!
//! 1. Faults off is not a different mode — it is byte-identity with the
//!    committed goldens, and an explicitly healthy axis value changes
//!    nothing either.
//! 2. Every engine (serial, scheduled, open-loop) keeps the outcome
//!    ledger conserved: `attempted = succeeded + retried_ok + gave_up +
//!    dropped`.
//! 3. Faulted campaigns stay byte-identical at any `--jobs` count.
//! 4. Fault plans are a pure function of the seed: same seed, same
//!    ledger; a different seed actually moves the injected faults.
//! 5. Crash-at-instant on the journaling file systems recovers via
//!    journal replay and leaves metadata consistent under the
//!    fsck-style walk.
//! 6. A sticky bad block exhausts a bounded retry budget exactly:
//!    N retries per op, then the op is given up, never aborting the
//!    run.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::prelude::*;
use rocketbench::core::testbed;
use rocketbench::faults::{FaultSpec, OutcomeLedger, RetryPolicy};
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// The same small sweep `tests/golden/sweep_small.csv` was captured
/// from, with the fault axis injectable.
fn small_sweep_spec(faults: Vec<Option<FaultSpec>>, retry: RetryPolicy) -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults,
        retry,
        slo_p99: None,
        plan,
        device: Bytes::gib(2),
        run_budget: None,
    }
}

fn engine_cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(2),
        window: Nanos::from_secs(1),
        seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.0,
        max_errors: 50,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: ObsConfig::default(),
        faults: None,
        retry: RetryPolicy::None,
    }
}

fn run_with(cfg: &EngineConfig, fs: FsKind) -> Recording {
    let mut target = testbed::paper_fs(fs, Bytes::gib(1), cfg.seed);
    let workload = personalities::fileserver(25);
    Engine::run(&mut target, &workload, cfg).expect("engine run")
}

fn ledger_of(rec: &Recording) -> &OutcomeLedger {
    let l = rec.ledger.as_ref().expect("faulted run records a ledger");
    assert!(
        l.balanced(),
        "ledger must conserve: attempted {} = ok {} + retried {} + gave-up {} + dropped {}",
        l.attempted,
        l.succeeded,
        l.retried_ok,
        l.gave_up,
        l.dropped
    );
    l
}

// ---------------------------------------------------------------- 1 --

/// With no fault axis at all, the sweep CSV matches the committed
/// golden byte for byte — and listing the healthy value explicitly
/// (`--faults none`) changes neither keys nor bytes.
#[test]
fn faults_off_is_byte_identical_with_goldens() {
    let expected = golden("sweep_small.csv");
    let implicit = run_campaign(&small_sweep_spec(Vec::new(), RetryPolicy::None), 2).unwrap();
    assert_eq!(implicit.to_csv(), expected, "pre-axis CSV drifted");
    let explicit = run_campaign(&small_sweep_spec(vec![None], RetryPolicy::None), 2).unwrap();
    assert_eq!(
        explicit.to_csv(),
        expected,
        "an explicitly healthy fault axis must not change report bytes"
    );
    assert_eq!(
        implicit.to_json().to_string(),
        explicit.to_json().to_string()
    );
    for cell in &explicit.cells {
        assert!(
            !cell.cell.key().contains("|faults="),
            "healthy cells must keep their pre-axis key: {}",
            cell.cell.key()
        );
        assert!(cell.ledger.is_none(), "healthy cells carry no ledger");
    }
}

/// A healthy engine run records no ledger, so bench output cannot grow
/// ledger lines unless faults were requested.
#[test]
fn healthy_runs_record_no_ledger() {
    let rec = run_with(&engine_cfg(3), FsKind::Ext2);
    assert!(rec.ledger.is_none());
}

// ---------------------------------------------------------------- 2 --

/// All three engines conserve the ledger under a mixed fault plan, for
/// every retry policy.
#[test]
fn ledger_conserves_across_all_three_engines() {
    let spec = FaultSpec::parse("slow-disk:2x,eio:0.001").unwrap();
    for retry in [RetryPolicy::Bounded { retries: 2 }, RetryPolicy::Continue] {
        for (processes, arrival) in [
            (1u32, Arrival::Closed),               // serial engine
            (4, Arrival::Closed),                  // discrete-event scheduler
            (2, Arrival::Poisson { rate: 2_000 }), // open loop
        ] {
            let mut cfg = engine_cfg(7);
            cfg.faults = Some(spec);
            cfg.retry = retry;
            cfg.processes = processes;
            cfg.arrival = arrival;
            let rec = run_with(&cfg, FsKind::Ext2);
            let l = ledger_of(&rec);
            assert!(
                l.attempted > 0,
                "procs={processes} arrival={arrival:?} did no work"
            );
            if arrival.is_open() {
                let open = rec.open_loop.as_ref().expect("open-loop report");
                assert_eq!(
                    l.dropped, open.dropped,
                    "queue-shed arrivals enter the ledger as dropped"
                );
            } else {
                assert_eq!(l.dropped, 0, "closed loops never drop");
            }
        }
    }
}

// ---------------------------------------------------------------- 3 --

/// A faulted campaign is byte-identical at any worker count, and its
/// faulted cells carry the `|faults=` key marker plus a merged,
/// balanced ledger.
#[test]
fn faulted_campaign_is_jobs_deterministic() {
    let plan = FaultSpec::parse("slow-disk:4x,eio:0.0005").unwrap();
    let spec = small_sweep_spec(vec![None, Some(plan)], RetryPolicy::Bounded { retries: 3 });
    let one = run_campaign(&spec, 1).unwrap();
    let four = run_campaign(&spec, 4).unwrap();
    assert_eq!(one.to_csv(), four.to_csv(), "CSV drifted across --jobs");
    assert_eq!(
        one.to_json().to_string(),
        four.to_json().to_string(),
        "JSON drifted across --jobs"
    );
    assert!(one.sweeps_faults());
    let csv = one.to_csv();
    assert!(csv.lines().next().unwrap().contains("faults"));
    let faulted: Vec<_> = one
        .cells
        .iter()
        .filter(|c| c.cell.faults.is_some())
        .collect();
    assert_eq!(faulted.len(), one.cells.len() / 2);
    for cell in faulted {
        assert!(cell.cell.key().contains("|faults=slow-disk:4x,eio:0.0005"));
        let l = cell.ledger.as_ref().expect("faulted cell has a ledger");
        assert!(l.balanced(), "campaign-merged ledger must conserve");
        assert!(l.attempted > 0);
    }
}

// ---------------------------------------------------------------- 4 --

/// Fault injection is a pure function of the seed: rerunning reproduces
/// the ledger exactly, and a different seed moves the faults.
#[test]
fn fault_plan_is_seed_deterministic_and_seed_sensitive() {
    let spec = FaultSpec::parse("eio:0.002").unwrap();
    let run = |seed: u64| {
        let mut cfg = engine_cfg(seed);
        cfg.faults = Some(spec);
        cfg.retry = RetryPolicy::Bounded { retries: 2 };
        let rec = run_with(&cfg, FsKind::Ext3);
        ledger_of(&rec).clone()
    };
    let a = run(11);
    assert_eq!(a, run(11), "same seed must reproduce the ledger exactly");
    let b = run(12);
    assert!(
        a != b,
        "a different seed should move the injected faults (ledger {a:?})"
    );
    assert!(
        a.retries + a.gave_up + a.retried_ok > 0,
        "the plan should actually inject at this error rate: {a:?}"
    );
}

// ---------------------------------------------------------------- 5 --

/// Crash-at-instant on the journaling file systems: the run records a
/// crash report, recovery goes through journal replay, the post-crash
/// fsck-style walk passes, and recovery time shows up as degraded mode.
#[test]
fn crash_then_recover_leaves_journaling_fs_consistent() {
    for fs in [FsKind::Ext3, FsKind::Xfs] {
        let mut cfg = engine_cfg(5);
        cfg.faults = Some(FaultSpec::parse("crash:200ms").unwrap());
        cfg.retry = RetryPolicy::Continue;
        let rec = run_with(&cfg, fs);
        let l = ledger_of(&rec);
        let crash = l.crash.as_ref().expect("crash plan records a report");
        assert_eq!(
            crash.mechanism, "journal-replay",
            "{fs:?} recovers via its journal"
        );
        assert!(
            crash.consistent,
            "{fs:?} metadata must walk clean after recovery"
        );
        assert!(crash.at >= Nanos::from_millis(200));
        assert!(
            l.degraded >= crash.recovery,
            "recovery time counts as degraded mode"
        );
    }
    // ext2 has no journal: same crash, fsck-scan mechanism instead.
    let mut cfg = engine_cfg(5);
    cfg.faults = Some(FaultSpec::parse("crash:200ms").unwrap());
    cfg.retry = RetryPolicy::Continue;
    let rec = run_with(&cfg, FsKind::Ext2);
    let crash = ledger_of(&rec).crash.expect("ext2 crash report");
    assert_eq!(crash.mechanism, "fsck-scan");
    assert!(crash.consistent);
}

/// The crash verdict surfaces in campaign reports as a column.
#[test]
fn crash_verdict_reaches_campaign_reports() {
    let mut spec = small_sweep_spec(
        vec![Some(FaultSpec::parse("crash:150ms").unwrap())],
        RetryPolicy::Continue,
    );
    spec.personalities = vec![Personality::parse("varmail").unwrap()];
    spec.filesystems = vec![FsKind::Ext3];
    spec.plan.protocol = Protocol::FixedRuns(1);
    let report = run_campaign(&spec, 1).unwrap();
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().ends_with("crash"));
    assert!(
        csv.contains("recovered"),
        "crash cell must report its verdict: {csv}"
    );
    assert!(report.render().contains("recovered"));
}

// ---------------------------------------------------------------- 6 --

/// A certain sticky bad block gives up after exactly N retries: with
/// `eio-sticky:1` every media request fails, so every attempted op
/// burns its full bounded budget and is given up — `retries == N *
/// gave_up`, nothing succeeds, and the run still completes instead of
/// aborting.
#[test]
fn sticky_eio_gives_up_after_exactly_n_retries() {
    const N: u32 = 3;
    let mut cfg = engine_cfg(9);
    cfg.duration = Nanos::from_secs(1);
    cfg.faults = Some(FaultSpec::parse("eio-sticky:1").unwrap());
    cfg.retry = RetryPolicy::Bounded { retries: N };
    let mut target = testbed::paper_ext2(Bytes::gib(1), cfg.seed);
    // A single-file read workload: every op wants the same blocks, so
    // every op re-hits poisoned media.
    let workload = personalities::random_read(Bytes::mib(8));
    let rec = Engine::run(&mut target, &workload, &cfg).expect("run survives total media failure");
    let l = ledger_of(&rec);
    assert!(l.attempted > 0);
    assert_eq!(l.succeeded, 0, "no media read can succeed");
    assert_eq!(l.retried_ok, 0, "sticky errors never clear on retry");
    assert_eq!(l.gave_up, l.attempted, "every op exhausts its budget");
    assert_eq!(
        l.retries,
        l.gave_up * N as u64,
        "exactly N retries per given-up op"
    );
}

// ------------------------------------------------------- CLI parsing --

/// The parse/label round-trip behind one-line CLI errors: canonical
/// labels re-parse to the same plan, and malformed flags come back as
/// `Err(String)`, never a panic.
#[test]
fn flag_round_trips_and_malformed_flags_never_panic() {
    for s in [
        "slow-disk:4x",
        "stall:500ms/50ms",
        "eio:0.0001",
        "eio-sticky:0.5",
        "enospc:90%",
        "crash:250ms",
        "slow-disk:2x,eio:0.001,crash:1000ms",
    ] {
        let spec = FaultSpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(FaultSpec::parse(&spec.label()).unwrap(), spec);
    }
    assert_eq!(FaultSpec::parse_flag("none").unwrap(), None);
    assert_eq!(FaultSpec::parse_flag("  ").unwrap(), None);
    for bad in ["slow-disk", "slow-disk:0x", "eio:2", "crash:never", "x:1"] {
        let err = FaultSpec::parse(bad).expect_err(bad);
        assert!(!err.contains('\n'), "one-line error for {bad:?}: {err}");
    }
    for p in ["none", "bounded:1", "bounded:100", "continue"] {
        let policy = RetryPolicy::parse(p).unwrap();
        assert_eq!(RetryPolicy::parse(&policy.to_string()).unwrap(), policy);
    }
    for bad in ["bounded:0", "bounded:101", "sometimes"] {
        let err = RetryPolicy::parse(bad).expect_err(bad);
        assert!(!err.contains('\n'), "one-line error for {bad:?}: {err}");
    }
}
