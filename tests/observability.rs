//! End-to-end tests for the flight recorder: cross-layer metrics,
//! virtual-time span traces, and the explain report.
//!
//! The load-bearing properties: (1) the recorder is a pure observer —
//! switching it on never changes what the engine measures; (2) every
//! artifact it emits (counter snapshots, trace JSON, metrics columns)
//! is a pure function of (workload, config, seed), independent of
//! `--jobs` and of repetition; (3) switched off — the default — the
//! campaign output is byte-identical to the committed goldens.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::prelude::*;
use rocketbench::core::testbed;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn obs_cfg(processes: u32, obs: ObsConfig) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(3),
        window: Nanos::from_secs(1),
        seed: 11,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.0,
        max_errors: 100,
        processes,
        cores: 4,
        arrival: Arrival::Closed,
        obs,
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    }
}

fn traced_run(processes: u32) -> Recording {
    let mut t = testbed::paper_ext2(Bytes::gib(1), 11);
    let w = personalities::fileserver(30);
    let cfg = obs_cfg(
        processes,
        ObsConfig {
            metrics: true,
            trace: Some(TraceConfig::default()),
        },
    );
    Engine::run(&mut t, &w, &cfg).unwrap()
}

/// The golden small-sweep spec, optionally with metrics collection.
fn sweep(metrics: bool) -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    plan.obs.metrics = metrics;
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::gib(2),
        run_budget: None,
    }
}

/// Recorder off — the default — leaves the campaign report exactly as
/// the committed golden: not a byte of drift from carrying the hooks.
#[test]
fn disabled_recorder_keeps_golden_bytes() {
    let report = run_campaign(&sweep(false), 2).expect("sweep");
    assert_eq!(report.to_csv(), golden("sweep_small.csv"));
}

/// `--metrics` only appends columns: the original columns of every row
/// still carry the exact golden bytes, and the metrics columns are
/// identical at any worker count.
#[test]
fn metrics_columns_append_and_are_jobs_invariant() {
    let spec = sweep(true);
    let serial = run_campaign(&spec, 1).expect("jobs=1");
    let sharded = run_campaign(&spec, 4).expect("jobs=4");
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());

    let csv = serial.to_csv();
    let golden_csv = golden("sweep_small.csv");
    for (line, golden_line) in csv.lines().zip(golden_csv.lines()) {
        assert!(
            line.starts_with(golden_line),
            "metrics must append, not rewrite: {line:?} vs {golden_line:?}"
        );
        assert_eq!(
            line.split(',').count(),
            golden_line.split(',').count() + 5,
            "expected exactly five appended metric columns"
        );
    }
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .ends_with("dev_busy_pct,qwait_pct,seeks,journal_commits,writeback_flushed"));
}

/// Counter snapshots are deterministic across repeat runs: same seed,
/// same flat counter list, byte for byte.
#[test]
fn counter_snapshots_repeat_exactly() {
    let render = |rec: &Recording| {
        let m = rec.metrics.as_ref().expect("metrics on");
        m.counters()
            .iter()
            .map(|(k, v)| format!("{k}={v}\n"))
            .collect::<String>()
    };
    for processes in [1, 4] {
        let a = traced_run(processes);
        let b = traced_run(processes);
        let counters = render(&a);
        assert_eq!(counters, render(&b), "processes={processes}");
        assert!(!counters.is_empty());
    }
}

/// Trace JSON is byte-identical across repeat runs, structurally valid
/// (balanced, monotone B/E nesting per track), and complete: every
/// completed op was seen, and with `sample_every = 1` every op emitted
/// a span.
#[test]
fn trace_json_repeats_and_nests() {
    for processes in [1, 4] {
        let a = traced_run(processes);
        let b = traced_run(processes);
        let ta = a.trace.as_ref().expect("trace on");
        let tb = b.trace.as_ref().expect("trace on");
        assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
        assert_eq!(ta.seen, a.ops, "every completed op observed");
        assert_eq!(ta.sampled, ta.seen, "sample_every=1 keeps all ops");
        let spans = ta.validate_nesting().expect("well-nested");
        assert!(spans > 0);
    }
}

/// Watching never perturbs: with the full recorder on, the measured
/// ledger (ops, errors, histogram) matches a blind run bit for bit,
/// and the recorded totals agree with the ledger.
#[test]
fn observer_effect_is_zero() {
    let blind = {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 11);
        let w = personalities::fileserver(30);
        Engine::run(&mut t, &w, &obs_cfg(4, ObsConfig::default())).unwrap()
    };
    let watched = traced_run(4);
    assert_eq!(blind.ops, watched.ops);
    assert_eq!(blind.errors, watched.errors);
    assert_eq!(blind.histogram, watched.histogram);

    let m = watched.metrics.as_ref().expect("metrics on");
    assert_eq!(m.sched.completed, watched.ops);
    assert!(m.sched.decomposed());
    assert_eq!(m.sched.parts_total(), m.sched.latency, "exact partition");
    let report = m.render_explain();
    assert!(report.contains("hit ratio"), "{report}");
    assert!(report.contains("of run"), "{report}");
    assert!(report.contains("queue wait"), "{report}");
    assert!(report.contains("exact match"), "{report}");
}

/// Sampling keeps the deterministic subset: every Nth completion in
/// virtual-time order, with the skipped ops still counted as seen.
#[test]
fn sampling_is_a_deterministic_subset() {
    let run = || {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 11);
        let w = personalities::fileserver(30);
        let cfg = obs_cfg(
            4,
            ObsConfig {
                metrics: false,
                trace: Some(TraceConfig { sample_every: 4 }),
            },
        );
        Engine::run(&mut t, &w, &cfg).unwrap()
    };
    let a = run();
    let b = run();
    let ta = a.trace.as_ref().unwrap();
    assert_eq!(
        ta.to_chrome_json(),
        b.trace.as_ref().unwrap().to_chrome_json()
    );
    assert_eq!(ta.seen, a.ops);
    assert_eq!(ta.sampled, a.ops.div_ceil(4));
    ta.validate_nesting().expect("sampled trace still nests");
}
