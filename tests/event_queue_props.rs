//! Property-style tests for the arena-backed event queue, plus pinned
//! recordings of the scheduled engine.
//!
//! The PR 7 queue swap (binary heap → arena 4-ary heap) must be
//! unobservable: pop order is a pure function of the `(at, seq)` keys,
//! equal instants pop FIFO, and a cleared-and-reused queue behaves
//! exactly like a fresh one. The properties here drive randomized
//! schedules from the repo's own deterministic [`Rng`] (the proptest
//! crate is unvendored), and the pinned tests freeze a digest of a
//! closed-loop and an open-loop recording so any future scheduler or
//! queue change that perturbs the simulated schedule fails loudly.

use rocketbench::core::sched::Arrival;
use rocketbench::core::testbed;
use rocketbench::core::workload::{personalities, Engine, EngineConfig, Recording};
use rocketbench::obs::ObsConfig;
use rocketbench::simcore::events::EventQueue;
use rocketbench::simcore::rng::Rng;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;
use std::fmt::Write as _;

/// Drains the queue, returning `(at, payload)` in pop order.
fn drain(q: &mut EventQueue<u64>) -> Vec<(Nanos, u64)> {
    std::iter::from_fn(|| q.pop()).collect()
}

#[test]
fn pop_order_is_sorted_by_at_then_seq() {
    // Random schedules with heavy time collisions (small time range)
    // across many seeds: pops must come out exactly in stable-sorted
    // `(at, insertion index)` order, whatever shape the heap took.
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + (rng.below(400) as usize);
        let mut q = EventQueue::new();
        let mut expected: Vec<(Nanos, u64)> = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let at = Nanos::from_nanos(rng.below(32));
            q.schedule(at, i);
            expected.push((at, i));
        }
        // Stable sort by time preserves insertion order on ties — the
        // exact FIFO contract the queue documents.
        expected.sort_by_key(|&(at, _)| at);
        assert_eq!(drain(&mut q), expected, "seed {seed}");
    }
}

#[test]
fn equal_instants_pop_fifo_within_mixed_schedule() {
    // Batches scheduled at the same instant, interleaved with other
    // instants, keep their scheduling order among themselves.
    let mut q = EventQueue::new();
    let t = |us| Nanos::from_micros(us);
    for (i, at) in [5u64, 1, 5, 3, 5, 1, 3, 5, 1].iter().enumerate() {
        q.schedule(t(*at), i as u64);
    }
    let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, p)| p).collect();
    assert_eq!(order, vec![1, 5, 8, 3, 6, 0, 2, 4, 7]);
}

#[test]
fn cleared_queue_is_equivalent_to_fresh() {
    // Run an arbitrary schedule through a queue, clear it, and replay a
    // second schedule: the pops must match a never-used queue fed the
    // same second schedule — including seq numbering for FIFO ties.
    for seed in 0..20u64 {
        let mut reused: EventQueue<u64> = EventQueue::new();
        let mut rng = Rng::new(0xC1EA4 ^ seed);
        for i in 0..(1 + rng.below(200)) {
            reused.schedule(Nanos::from_nanos(rng.below(64)), i);
        }
        // Leave it partially drained, then clear.
        for _ in 0..rng.below(100) {
            let _ = reused.pop();
        }
        reused.clear();
        assert!(reused.is_empty());

        let mut fresh: EventQueue<u64> = EventQueue::new();
        let mut schedule_rng = Rng::new(0xF4E54 ^ seed);
        for i in 0..(1 + schedule_rng.below(300)) {
            let at = Nanos::from_nanos(schedule_rng.below(16));
            reused.schedule(at, i);
            fresh.schedule(at, i);
        }
        assert_eq!(drain(&mut reused), drain(&mut fresh), "seed {seed}");
    }
}

#[test]
fn interleaved_push_pop_matches_reference_model() {
    // Adversarial steady-state interleave checked against a naive
    // stable-sorted reference queue.
    for seed in 0..10u64 {
        let mut rng = Rng::new(0xBEEF ^ seed);
        let mut q: EventQueue<u64> = EventQueue::with_capacity(8);
        let mut model: Vec<(Nanos, u64, u64)> = Vec::new(); // (at, seq, payload)
        let mut seq = 0u64;
        let mut out_q = Vec::new();
        let mut out_m = Vec::new();
        for step in 0..2000u64 {
            if rng.below(3) < 2 || model.is_empty() {
                let at = Nanos::from_nanos(step / 3 + rng.below(40));
                q.schedule(at, step);
                model.push((at, seq, step));
                seq += 1;
            } else {
                out_q.push(q.pop().expect("model says non-empty"));
                let min = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(at, s, _))| (at, s))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (at, _, payload) = model.swap_remove(min);
                out_m.push((at, payload));
            }
        }
        out_q.extend(drain(&mut q));
        while !model.is_empty() {
            let min = model
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, s, _))| (at, s))
                .map(|(i, _)| i)
                .expect("non-empty");
            let (at, _, payload) = model.swap_remove(min);
            out_m.push((at, payload));
        }
        assert_eq!(out_q, out_m, "seed {seed}");
    }
}

/// Renders every observable field of a recording into a stable text
/// digest, so the pinned tests fail on any behavioural drift.
fn digest(rec: &Recording) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ops={} errors={} duration={}ns hit_ratio={:?}",
        rec.ops,
        rec.errors,
        rec.duration.as_nanos(),
        rec.hit_ratio.map(|h| (h * 1e6).round() / 1e6),
    );
    let _ = write!(out, "hist total={}", rec.histogram.total());
    for k in 0..64 {
        if rec.histogram.count(k) > 0 {
            let _ = write!(out, " {k}:{}", rec.histogram.count(k));
        }
    }
    let _ = writeln!(out);
    let mut labels: Vec<_> = rec.per_op.keys().copied().collect();
    labels.sort_unstable();
    for label in labels {
        let h = &rec.per_op[label];
        let _ = writeln!(
            out,
            "per_op {label} total={} min_bucket={:?} max_bucket={:?}",
            h.total(),
            h.min_bucket(),
            h.max_bucket()
        );
    }
    for (i, w) in rec.windows.iter().enumerate() {
        let _ = writeln!(
            out,
            "window {i} start={}ns ops={} hist={}",
            w.start.as_nanos(),
            w.ops,
            w.histogram.total()
        );
    }
    if let Some(ol) = &rec.open_loop {
        let _ = writeln!(
            out,
            "open arrival={} offered={} completed={} failed={} dropped={} \
             p50={:?} p99={:?} p999={:?} max_depth={}",
            ol.arrival,
            ol.offered,
            ol.completed,
            ol.failed,
            ol.dropped,
            ol.p50.map(|n| n.as_nanos()),
            ol.p99.map(|n| n.as_nanos()),
            ol.p999.map(|n| n.as_nanos()),
            ol.max_queue_depth
        );
        for (at, depth) in &ol.depth_timeline {
            let _ = writeln!(out, "depth {}ns {depth}", at.as_nanos());
        }
    }
    out
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN` is set (for intentional behaviour
/// changes — the diff then shows up in review).
fn check_golden(name: &str, actual: &str, context: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        return;
    }
    let expected =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    assert_eq!(actual, expected, "{context}");
}

fn pinned_config(arrival: Arrival) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(1),
        window: Nanos::from_millis(250),
        seed: 11,
        cold_start: false,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 4,
        cores: 2,
        arrival,
        obs: ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    }
}

#[test]
fn closed_loop_recording_is_pinned() {
    let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::mib(512), 11);
    let workload = personalities::fileserver(25);
    let rec = Engine::run(&mut target, &workload, &pinned_config(Arrival::Closed))
        .expect("closed-loop run");
    check_golden(
        "sched_closed_loop.txt",
        &digest(&rec),
        "closed-loop recording drifted; the scheduler or queue changed \
         simulated behaviour",
    );
}

#[test]
fn open_loop_recording_is_pinned() {
    let mut target = testbed::paper_fs(testbed::FsKind::Ext2, Bytes::mib(512), 11);
    let workload = personalities::fileserver(25);
    let rec = Engine::run(
        &mut target,
        &workload,
        &pinned_config(Arrival::Poisson { rate: 10_000 }),
    )
    .expect("open-loop run");
    check_golden(
        "sched_open_loop.txt",
        &digest(&rec),
        "open-loop recording drifted; the scheduler or queue changed \
         simulated behaviour",
    );
}
