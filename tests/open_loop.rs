//! End-to-end tests for the open-loop load dimension: arrival
//! processes, the bounded admission queue, tail-latency percentiles,
//! and the campaign's `arrival` axis.
//!
//! The load-bearing properties, in the repo's usual order of
//! importance: (1) closed-loop cells are untouched by the new axis —
//! byte-identical to the committed pre-axis goldens; (2) every
//! open-loop run is a pure function of (workload, config, seed),
//! independent of `--jobs`; (3) the physics is right: latency is flat
//! below the knee and explodes past it, exactly the hockey stick a
//! closed loop can never show.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::prelude::*;
use rocketbench::core::testbed;
use rocketbench::simcore::rng::Rng;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn open_cfg(secs: u64, seed: u64, arrival: Arrival) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(secs),
        window: Nanos::from_secs(1),
        seed,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.0,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival,
        obs: ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    }
}

/// One closed-loop run on the standard memory-bound testbed.
fn closed_run(seed: u64) -> Recording {
    let mut t = testbed::paper_ext2(Bytes::gib(1), seed);
    let w = personalities::random_read(Bytes::mib(16));
    Engine::run(&mut t, &w, &open_cfg(3, seed, Arrival::Closed)).unwrap()
}

/// Closed-loop capacity of the standard memory-bound testbed, in
/// ops/sec — the denominator for the hockey-stick fractions below.
fn closed_loop_capacity(seed: u64) -> u64 {
    closed_run(seed).ops_per_sec() as u64
}

fn open_run(seed: u64, arrival: Arrival) -> OpenLoopReport {
    let mut t = testbed::paper_ext2(Bytes::gib(1), seed);
    let w = personalities::random_read(Bytes::mib(16));
    let rec = Engine::run(&mut t, &w, &open_cfg(3, seed, arrival)).unwrap();
    rec.open_loop.expect("open-loop report")
}

/// The figure a closed loop cannot draw: p99 latency is benign well
/// below the knee and explodes once offered load exceeds capacity,
/// with the overflow showing up as admission-queue drops.
#[test]
fn latency_hockey_sticks_past_the_knee() {
    let capacity = closed_loop_capacity(7);
    assert!(capacity > 100, "testbed capacity only {capacity} ops/s");
    let cool = open_run(7, Arrival::Poisson { rate: capacity / 2 });
    let hot = open_run(
        7,
        Arrival::Poisson {
            rate: capacity + capacity / 2,
        },
    );
    let cool_p99 = cool.p99.expect("cool p99");
    let hot_p99 = hot.p99.expect("hot p99");
    assert!(
        hot_p99.as_secs_f64() > cool_p99.as_secs_f64() * 5.0,
        "no hockey stick: p99 {cool_p99} at 0.5x vs {hot_p99} at 1.5x capacity"
    );
    // Below the knee the queue admits everything; past it the bounded
    // queue must shed load rather than pretend to absorb it.
    assert_eq!(cool.dropped, 0, "drops below the knee");
    assert!(hot.dropped > 0, "overload never hit the admission bound");
    assert!(hot.max_queue_depth > cool.max_queue_depth);
    // And the closed loop is structurally blind to all of it: its p99
    // is pure service time — in the same neighbourhood as the
    // underloaded open run, nowhere near the overloaded one's queue
    // wait. The "flat closed-loop curve" is exactly this number, which
    // never moves because issue-on-completion cannot overload itself.
    let closed_p99 = closed_run(7).histogram.quantile(0.99).expect("closed p99");
    assert!(
        hot_p99.as_secs_f64() > closed_p99.as_secs_f64() * 5.0,
        "closed-loop p99 {closed_p99} should sit far below overloaded open-loop {hot_p99}"
    );
}

/// The Poisson generator is calibrated: over many inter-arrival gaps
/// the sample mean lands within a few percent of 1/rate.
#[test]
fn poisson_interarrival_mean_matches_rate() {
    let rate = 10_000u64;
    let mut gen = ArrivalGen::new(
        Arrival::Poisson { rate },
        Rng::new(42).fork("arrivals"),
        Nanos::ZERO,
        Nanos::from_secs(3600),
    )
    .unwrap();
    let n = 100_000u64;
    let mut t = Nanos::ZERO;
    let mut prev = Nanos::ZERO;
    let mut total = 0u64;
    for _ in 0..n {
        t = gen.next_after(t);
        total += t.as_nanos() - prev.as_nanos();
        prev = t;
    }
    let mean_ns = total as f64 / n as f64;
    let expect_ns = 1e9 / rate as f64;
    let err = (mean_ns - expect_ns).abs() / expect_ns;
    assert!(
        err < 0.02,
        "mean inter-arrival {mean_ns:.1} ns vs expected {expect_ns:.1} ns ({:.1}% off)",
        err * 100.0
    );
}

/// The request ledger balances: every request the arrival process
/// offered is accounted for as completed, failed, or dropped — even
/// deep into overload.
#[test]
fn drop_accounting_sums_to_offered() {
    let capacity = closed_loop_capacity(3);
    for mult in [1u64, 3] {
        let open = open_run(
            3,
            Arrival::Poisson {
                rate: capacity * mult,
            },
        );
        assert!(open.offered > 0);
        assert_eq!(
            open.offered,
            open.completed + open.failed + open.dropped,
            "ledger does not sum at {mult}x capacity"
        );
    }
    // The bursty and diurnal processes keep the same books.
    for arrival in [
        Arrival::Bursty { rate: capacity },
        Arrival::Diurnal { rate: capacity },
    ] {
        let open = open_run(5, arrival);
        assert_eq!(open.offered, open.completed + open.failed + open.dropped);
    }
}

/// The golden small-sweep spec plus an arrival axis.
fn sweep_with_arrivals(arrivals: Vec<Arrival>) -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        processes: Vec::new(),
        arrivals,
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::gib(2),
        run_budget: None,
    }
}

/// Sweeping the arrival axis must not perturb the closed-loop cells:
/// every `closed` row of the widened CSV, with the inserted `arrival`
/// column and the trailing open-loop columns removed, is
/// byte-identical to the committed pre-axis golden rows.
#[test]
fn closed_cells_survive_the_axis_unchanged() {
    let spec = sweep_with_arrivals(vec![Arrival::Closed, Arrival::Poisson { rate: 500 }]);
    let report = run_campaign(&spec, 2).expect("sweep");
    let csv = report.to_csv();
    // Column 5 is `arrival`; the last five are offered..p999_ms.
    let strip_arrival_columns = |line: &str| -> String {
        let mut fields: Vec<&str> = line.split(',').collect();
        fields.remove(5);
        fields.truncate(fields.len() - 5);
        fields.join(",")
    };
    let mut lines = csv.lines();
    let header = strip_arrival_columns(lines.next().expect("header"));
    let closed_rows: Vec<String> = lines
        .filter(|l| l.split(',').nth(5) == Some("closed"))
        .map(strip_arrival_columns)
        .collect();
    let golden_csv = golden("sweep_small.csv");
    let mut golden_lines = golden_csv.lines();
    assert_eq!(header, golden_lines.next().expect("golden header"));
    let golden_rows: Vec<String> = golden_lines.map(str::to_string).collect();
    assert_eq!(
        closed_rows, golden_rows,
        "closed-loop cells drifted once the arrival axis was swept"
    );
}

/// A spec whose axis is explicitly `[closed]` keeps the exact
/// pre-axis report bytes: no `arrival` column, identical CSV.
#[test]
fn explicit_closed_axis_is_byte_identical_to_golden() {
    let report = run_campaign(&sweep_with_arrivals(vec![Arrival::Closed]), 3).expect("sweep");
    assert!(!report.sweeps_arrival());
    assert_eq!(report.to_csv(), golden("sweep_small.csv"));
}

/// Open-loop campaigns are byte-identical at any worker count and
/// across repetitions: the percentile rows are the simulation's, never
/// the host's.
#[test]
fn arrival_axis_is_jobs_deterministic() {
    let spec = sweep_with_arrivals(vec![
        Arrival::Closed,
        Arrival::Poisson { rate: 800 },
        Arrival::Bursty { rate: 800 },
    ]);
    let serial = run_campaign(&spec, 1).expect("jobs=1");
    let sharded = run_campaign(&spec, 4).expect("jobs=4");
    assert_eq!(serial.cells.len(), 12); // 2 personalities x 2 fs x 3 arrivals
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
    let again = run_campaign(&spec, 4).expect("repeat");
    assert_eq!(sharded.to_csv(), again.to_csv());
}

/// Seed-determinism and seed-sensitivity of a single open-loop run:
/// same seed, same ledger and percentiles; different seed, different
/// arrival stream.
#[test]
fn open_runs_are_seed_deterministic() {
    let run = |seed: u64| open_run(seed, Arrival::Poisson { rate: 2_000 });
    assert_eq!(run(11), run(11));
    let a = run(11);
    let b = run(12);
    assert_ne!(
        (a.offered, a.p50, a.p99),
        (b.offered, b.p50, b.p99),
        "seed had no effect on the arrival stream"
    );
}
