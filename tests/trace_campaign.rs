//! End-to-end trace-backed sweep: the acceptance path for the replay
//! subsystem. A recorded trace becomes campaign cells (trace × fs)
//! under distinct timing policies, runs under both the fixed and the
//! adaptive protocol, and reports per-cell verdict/CI columns that are
//! byte-identical at any worker count.

use rocketbench::core::campaign::{run_campaign, SweepSpec, TraceSource};
use rocketbench::core::prelude::*;
use rocketbench::core::runner::Protocol;
use rocketbench::core::testbed::FsKind;
use rocketbench::replay::Recorder;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

/// Records a short varmail session on the paper's ext2 testbed.
fn record_trace() -> Trace {
    let mut origin = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 11);
    let mut recorder = Recorder::new(&mut origin);
    let workload = personalities::varmail(8);
    let config = EngineConfig {
        duration: Nanos::from_secs(1),
        window: Nanos::from_secs(1),
        seed: 11,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    Engine::run(&mut recorder, &workload, &config).expect("record");
    recorder.finish()
}

fn trace_spec(trace: &Trace) -> SweepSpec {
    let mut plan = RunPlan::quick(23);
    plan.protocol = Protocol::FixedRuns(2);
    SweepSpec {
        name: "trace-sweep".into(),
        personalities: Vec::new(),
        traces: vec![
            TraceSource::new("varmail", trace.clone(), Timing::Afap),
            TraceSource::new("varmail", trace.clone(), Timing::Faithful),
            TraceSource::new("varmail", trace.clone(), Timing::Scaled { factor: 2.0 }),
        ],
        file_sizes: Vec::new(),
        file_counts: Vec::new(),
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(64)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::mib(256),
        run_budget: None,
    }
}

#[test]
fn trace_sweep_end_to_end() {
    let trace = record_trace();
    assert!(trace.len() > 100, "recording produced a trivial trace");
    let spec = trace_spec(&trace);
    // 3 timing policies x 2 fs.
    assert_eq!(spec.expand().len(), 6);

    let report = run_campaign(&spec, 2).expect("trace campaign runs");
    assert_eq!(report.cells.len(), 6);
    for c in &report.cells {
        assert_eq!(c.runs, 2, "{}", c.cell.label());
        assert_eq!(c.errors, 0, "{}: replay diverged", c.cell.label());
        assert!(c.summary.mean > 0.0);
        // Verdict/CI columns exist exactly like personality cells.
        assert_eq!(c.verdict, Verdict::Fixed);
        let ci = c.ci.expect("bootstrap ci");
        assert!(ci.lo <= c.summary.mean && c.summary.mean <= ci.hi);
    }
    // On ext2 (fast enough to saturate) the policies measure different
    // things: afap beats faithful.
    let by_label = |label: &str| {
        report
            .cells
            .iter()
            .find(|c| c.cell.label() == label)
            .unwrap_or_else(|| panic!("missing cell {label}"))
    };
    let afap = by_label("varmail@afap/ext2");
    let faithful = by_label("varmail@faithful/ext2");
    assert!(afap.summary.mean > faithful.summary.mean);

    // Rendering paths carry the trace cells.
    let csv = report.to_csv();
    assert!(csv.contains("trace:varmail@afap"));
    assert!(csv.contains("trace:varmail@scaled=2"));
    assert!(report.render().contains("varmail@faithful/ext2"));
}

#[test]
fn trace_sweep_is_jobs_deterministic() {
    let trace = record_trace();
    let spec = trace_spec(&trace);
    let serial = run_campaign(&spec, 1).expect("serial");
    let sharded = run_campaign(&spec, 4).expect("sharded");
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
}

#[test]
fn trace_sweep_supports_adaptive_protocol() {
    let trace = record_trace();
    let mut spec = trace_spec(&trace);
    spec.traces.truncate(1);
    spec.filesystems = vec![FsKind::Ext2];
    spec.plan.protocol = Protocol::Adaptive {
        min_runs: 3,
        max_runs: 8,
        ci_rel_width: 0.10,
        confidence: 0.95,
    };
    let report = run_campaign(&spec, 2).expect("adaptive trace campaign");
    let cell = &report.cells[0];
    // Replay throughput is highly repeatable, so a 10% CI converges at
    // the floor — and the verdict says so.
    assert_eq!(cell.verdict, Verdict::Converged);
    assert!(cell.runs >= 3 && cell.runs < 8, "runs {}", cell.runs);
    let ci = cell.ci.expect("ci");
    assert!(ci.rel_width() <= 0.10);
}
