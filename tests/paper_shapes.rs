//! Integration tests asserting the paper's experimental *shapes* hold on
//! the full stack — the acceptance criteria from DESIGN.md's experiment
//! index (E1, E1z, E2, E3, E4).

use rocketbench::core::figures::{
    fig1, fig1_zoom, fig2, fig3, fig4, Fig1Config, Fig1ZoomConfig, Fig2Config, Fig3Config,
    Fig4Config,
};
use rocketbench::core::runner::{Protocol, RunPlan};
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;
use rocketbench::stats::peaks::{bimodal_balance, Modality};

/// E1: the Figure 1 cliff — order-of-magnitude drop at the cache
/// boundary, RSD spiking in the transition region.
#[test]
fn e1_fig1_cliff_and_rsd_spike() {
    let mut plan = RunPlan::paper_fig1(0);
    plan.protocol = Protocol::FixedRuns(4);
    plan.duration = Nanos::from_secs(70);
    plan.tail_windows = 6;
    let config = Fig1Config {
        sizes: vec![
            Bytes::mib(128),
            Bytes::mib(384),
            Bytes::mib(448),
            Bytes::mib(896),
        ],
        plan,
        device: Bytes::gib(2),
    };
    let data = fig1(&config).unwrap();

    // Plateau / tail ratio: an order of magnitude and then some. (The
    // paper's 896 MB point gives ~50x; our disk model's short-seek cost
    // lands nearer 35x. Same story: memory vs disk.)
    let plateau = data.points[0].mean;
    let tail = data.points.last().unwrap().mean;
    assert!(
        plateau > 25.0 * tail,
        "plateau {plateau:.0} vs tail {tail:.0}: ratio too small"
    );
    // Plateau near the paper's 9.7 kops/s.
    assert!((9_000.0..10_500.0).contains(&plateau), "plateau {plateau}");
    // Cliff located between 384 and 448 MiB.
    let cliff = data.fragility.cliff.expect("cliff");
    assert_eq!(cliff.x_before, 384.0);
    assert_eq!(cliff.x_after, 448.0);
    assert!(cliff.drop_factor() >= 5.0);
    // RSD maximum sits at the transition point of the coarse sweep.
    let (rsd_x, _) = data.fragility.max_rsd_at.unwrap();
    assert_eq!(rsd_x, 448.0, "max RSD not in transition region");
    // Disk-range RSD >= 3x memory-range RSD ("up to 5 times greater").
    let mem_rsd = data.points[0].rsd.max(0.01);
    let disk_rsd = data.points.last().unwrap().rsd;
    assert!(
        disk_rsd >= 3.0 * mem_rsd,
        "disk RSD {disk_rsd:.2} not ≫ memory RSD {mem_rsd:.2}"
    );
}

/// E1 (boundary probe): "in the transition region ... the relative
/// standard deviation skyrockets by up to 35 % (not visible on the
/// figure because it only depicts data points with a 64 MB step)". A few
/// megabytes of cache-capacity wobble flip runs between regimes.
#[test]
fn e1_boundary_rsd_skyrockets() {
    let mut plan = RunPlan::paper_fig1(9_000);
    plan.protocol = Protocol::FixedRuns(8);
    plan.duration = Nanos::from_secs(70);
    plan.tail_windows = 6;
    let config = Fig1Config {
        sizes: vec![Bytes::mib(412)],
        plan,
        device: Bytes::gib(2),
    };
    let data = fig1(&config).unwrap();
    let rsd = data.points[0].rsd;
    assert!(
        rsd >= 15.0,
        "boundary RSD only {rsd:.1}%; the fragile region should exceed 15%"
    );
    // And the samples really span regimes: max/min well separated.
    let samples = &data.points[0].samples;
    let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(hi / lo >= 1.4, "runs too consistent: {lo:.0}..{hi:.0}");
}

/// E1z: the zoom — throughput halves within a few MiB of the boundary.
#[test]
fn e1z_zoom_drop_is_narrow() {
    let mut plan = RunPlan::paper_fig1(500);
    plan.protocol = Protocol::FixedRuns(3);
    plan.duration = Nanos::from_secs(70);
    plan.tail_windows = 6;
    plan.cache_jitter = Bytes::ZERO; // isolate the boundary itself
    let config = Fig1ZoomConfig {
        lo: Bytes::mib(406),
        hi: Bytes::mib(420),
        step: Bytes::mib(1),
        plan,
        device: Bytes::gib(2),
    };
    let data = fig1_zoom(&config).unwrap();
    let halving = data
        .fragility
        .halving_distance()
        .expect("no halving found in zoom range");
    assert!(
        halving <= 8.0,
        "drop takes {halving:.0} MiB; paper observed a < 6 MB region"
    );
}

/// E2: warm-up race — systems agree at both extremes and differ by >= 2x
/// somewhere in the middle.
#[test]
fn e2_fig2_systems_differ_only_in_transition() {
    let data = fig2(&Fig2Config::quick()).unwrap();
    assert_eq!(data.curves.len(), 3);
    let div = data.divergence_series();
    // Converged at the end (warm): within 10 %.
    let end = div.last().unwrap().1;
    assert!(end < 1.10, "end divergence {end:.2}x");
    // Somewhere in the middle: >= 2x apart.
    let max = div.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
    assert!(max >= 2.0, "max divergence only {max:.2}x");
    // Warm-up ordering: xfs (64 KiB clusters) warms fastest, ext2 (8 KiB)
    // slowest.
    let warmup = |name: &str| {
        data.curves
            .iter()
            .find(|c| c.fs == name)
            .unwrap()
            .warmup
            .warmup_seconds
            .unwrap_or(f64::MAX)
    };
    assert!(
        warmup("xfs") < warmup("ext2"),
        "xfs should warm before ext2"
    );
}

/// E3: histogram modality sequence — unimodal, balanced bimodal,
/// disk-dominant — spanning >= 3 orders of magnitude.
#[test]
fn e3_fig3_modality_progression() {
    let config = Fig3Config {
        sizes: vec![Bytes::mib(64), Bytes::mib(820), Bytes::gib(25)],
        warmup: Nanos::from_secs(20),
        measure: Nanos::from_secs(60),
        seed: 0,
    };
    let data = fig3(&config).unwrap();
    let h = &data.histograms;
    assert_eq!(h.len(), 3);

    // (a) 64 MiB: in-memory, unimodal, microsecond peak.
    assert_eq!(h[0].modality, Modality::Unimodal);
    let mode_a = h[0].histogram.mode_bucket().unwrap();
    assert!(
        (10..=13).contains(&mode_a),
        "memory peak at bucket {mode_a}"
    );

    // (b) 2x cache: bimodal with roughly equal peaks.
    assert_eq!(h[1].modality, Modality::Bimodal);
    let balance = bimodal_balance(&h[1].histogram).unwrap();
    assert!(balance > 0.7, "peaks not balanced: {balance:.2}");
    assert!(h[1].histogram.span_orders_of_magnitude() >= 3.0);

    // (c) 25 GiB: the memory peak is invisibly small; disk-scale mode.
    let mode_c = h[2].histogram.mode_bucket().unwrap();
    assert!((21..=25).contains(&mode_c), "disk peak at bucket {mode_c}");
    let hit_mass: f64 = (0..16).map(|k| h[2].histogram.fraction(k)).sum();
    assert!(
        hit_mass < 0.05,
        "memory peak should be negligible: {hit_mass:.3}"
    );
}

/// E4: the histogram timeline — hit mass monotonically (mod noise)
/// replaces miss mass; bimodal for most of the run.
#[test]
fn e4_fig4_regime_shift_over_time() {
    let data = fig4(&Fig4Config::quick()).unwrap();
    let hits = data.hit_mass_series();
    assert!(hits.len() >= 8);
    assert!(hits.first().unwrap().1 < 0.3, "run started warm");
    assert!(hits.last().unwrap().1 > 0.95, "run never warmed");
    // Roughly monotone: each point at least 90 % of the running max.
    let mut running_max: f64 = 0.0;
    for &(t, h) in &hits {
        assert!(
            h >= running_max * 0.9 - 0.02,
            "hit mass regressed at t={t}: {h:.3} after max {running_max:.3}"
        );
        running_max = running_max.max(h);
    }
    // Bimodal for a substantial part of the run.
    assert!(
        data.bimodal_windows() * 3 >= data.windows.len(),
        "bimodal in only {}/{} windows",
        data.bimodal_windows(),
        data.windows.len()
    );
}
