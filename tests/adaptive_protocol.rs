//! End-to-end tests of the convergence-driven run protocol through the
//! campaign engine: adaptive cells converge early when the measurement
//! is stable, keep running when it is fragile, refuse mixed-regime
//! aggregates, and — like every campaign — produce byte-identical
//! reports at any worker count.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::runner::{Protocol, RunPlan, Verdict};
use rocketbench::core::testbed::FsKind;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

/// An adaptive protocol sized for debug-mode CI: 3–8 runs of 3 virtual
/// seconds, 5 % CI target.
fn adaptive_plan(seed: u64) -> RunPlan {
    let mut plan = RunPlan::quick(seed);
    plan.protocol = Protocol::Adaptive {
        min_runs: 3,
        max_runs: 8,
        ci_rel_width: 0.05,
        confidence: 0.95,
    };
    plan.duration = Nanos::from_secs(3);
    plan.window = Nanos::from_secs(1);
    plan.tail_windows = 2;
    plan
}

/// Two cells under one adaptive protocol: a 4 MiB file deep inside the
/// 48 MiB cache (stable, memory-bound) and a 64 MiB file straddling it
/// (fragile: every read mixes hits and misses).
fn stable_vs_fragile() -> SweepSpec {
    SweepSpec {
        name: "adaptive".into(),
        personalities: vec![Personality::RandomRead],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(4), Bytes::mib(64)],
        file_counts: vec![10],
        filesystems: vec![FsKind::Ext2],
        cache_capacities: vec![Bytes::mib(48)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan: adaptive_plan(21),
        device: Bytes::mib(512),
        run_budget: None,
    }
}

#[test]
fn stable_cell_converges_early_fragile_cell_runs_longer() {
    let report = run_campaign(&stable_vs_fragile(), 2).expect("campaign");
    assert_eq!(report.cells.len(), 2);
    let stable = &report.cells[0];
    let fragile = &report.cells[1];
    assert_eq!(stable.cell.file_size, Bytes::mib(4));

    // The memory-bound cell converges at the floor, well under the
    // ceiling FixedRuns(10)-style folklore would have burned.
    assert_eq!(stable.verdict, Verdict::Converged);
    assert_eq!(stable.runs, 3, "stable cell used {} runs", stable.runs);
    let ci = stable.ci.expect("converged cell has a CI");
    assert!(ci.rel_width() <= 0.05, "ci rel width {}", ci.rel_width());

    // The straddling cell keeps collecting runs and ends with an
    // explicit non-converged verdict (max-runs if every run stayed in
    // the transition regime, mixed-regime if the jitter flipped one
    // across) — never a silent single number.
    assert!(
        fragile.runs >= stable.runs,
        "fragile cell stopped earlier ({} vs {})",
        fragile.runs,
        stable.runs
    );
    assert_ne!(fragile.verdict, Verdict::Converged, "fragile cell blessed");
    assert!(!fragile.verdict.is_sound());
}

#[test]
fn adaptive_campaign_is_byte_identical_across_jobs() {
    let spec = stable_vs_fragile();
    let serial = run_campaign(&spec, 1).expect("serial");
    let sharded = run_campaign(&spec, 4).expect("sharded");
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
    for (a, b) in serial.cells.iter().zip(&sharded.cells) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.ci, b.ci);
    }
}

#[test]
fn verdicts_and_cis_appear_in_every_format() {
    let report = run_campaign(&stable_vs_fragile(), 2).expect("campaign");
    let csv = report.to_csv();
    let header = csv.lines().next().unwrap();
    for col in ["runs", "ci_lo", "ci_hi", "verdict"] {
        assert!(header.contains(col), "csv header missing {col}: {header}");
    }
    assert!(csv.contains("converged"), "csv: {csv}");
    let json = report.to_json().to_string();
    assert!(json.contains("\"verdict\":\"converged\""), "json: {json}");
    assert!(json.contains("\"ci\":{\"lo\":"));
    assert!(json.contains("\"runs\":3"));
    let text = report.render();
    assert!(text.contains("converged"), "render: {text}");
    assert!(text.contains("verdict"));
}

#[test]
fn shared_run_budget_is_deterministic_and_binding() {
    let mut spec = stable_vs_fragile();
    // Budget of 8 runs over 2 cells: each cell capped at 4.
    spec.run_budget = Some(8);
    let report = run_campaign(&spec, 2).expect("campaign");
    assert!(
        report.cells.iter().all(|c| c.runs <= 4),
        "budget exceeded: {:?}",
        report.cells.iter().map(|c| c.runs).collect::<Vec<_>>()
    );
    let serial = run_campaign(&spec, 1).expect("serial");
    assert_eq!(serial.to_csv(), report.to_csv());
}
