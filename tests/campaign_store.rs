//! The result store's contract: cached cells are indistinguishable
//! from live ones.
//!
//! Campaign results are pure functions of the spec, so a record served
//! from the content-addressed store must reproduce the live report
//! byte-for-byte — against the committed sweep golden, at any `--jobs`,
//! after an interrupted campaign resumes, under `--no-cache`, and in
//! the presence of stale or tampered records. These tests pin all of
//! that, plus the warm-rerun guarantee the whole feature exists for:
//! an unchanged sweep's second run executes zero cells.

use rocketbench::core::campaign::{
    run_campaign, run_campaign_with, CampaignOptions, Personality, StoreOptions, SweepSpec,
};
use rocketbench::core::prelude::*;
use rocketbench::core::store::{cell_identity, digest, ResultStore};
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;
use std::path::PathBuf;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// A fresh store directory per test, cleaned before use so reruns of
/// the test suite never see their own leftovers.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rb-campaign-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_store(dir: &std::path::Path) -> CampaignOptions {
    CampaignOptions {
        store: Some(StoreOptions::at(dir)),
    }
}

/// The exact spec behind `tests/golden/sweep_small.csv` (see
/// `golden_outputs.rs`): the committed reference the store must
/// reproduce from cache.
fn small_sweep_spec() -> SweepSpec {
    let mut plan = RunPlan::quick(0);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(2);
    SweepSpec {
        name: "sweep".into(),
        personalities: vec![
            Personality::parse("randomread").unwrap(),
            Personality::parse("varmail").unwrap(),
        ],
        file_sizes: vec![Bytes::mib(16)],
        file_counts: vec![25],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(32)],
        plan,
        device: Bytes::gib(2),
        ..SweepSpec::default()
    }
}

#[test]
fn cached_and_live_reports_match_the_committed_golden() {
    let expected = golden("sweep_small.csv");
    let dir = store_dir("golden");
    let spec = small_sweep_spec();
    // Cold: every cell executes live and streams to the store.
    let cold = run_campaign_with(&spec, 3, &with_store(&dir)).expect("cold sweep");
    assert_eq!(cold.stats.executed, cold.stats.expanded);
    assert_eq!(cold.stats.cached, 0);
    assert_eq!(cold.report.to_csv(), expected, "cold store run drifted");
    // Warm, at a different jobs count: zero cells execute, and the
    // report still matches the committed golden byte-for-byte.
    for jobs in [1, 4] {
        let warm = run_campaign_with(&spec, jobs, &with_store(&dir)).expect("warm sweep");
        assert_eq!(
            warm.stats.executed, 0,
            "warm rerun of an unchanged sweep must execute 0 cells"
        );
        assert_eq!(warm.stats.cached, warm.stats.expanded);
        assert_eq!(
            warm.report.to_csv(),
            expected,
            "cached report drifted at jobs={jobs}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_partial_campaign_converges() {
    // The uninterrupted reference, no store involved.
    let spec = small_sweep_spec();
    let reference = run_campaign(&spec, 2).expect("reference sweep");
    let (ref_csv, ref_json) = (reference.to_csv(), reference.to_json().to_string());

    let dir = store_dir("resume");
    // Simulate a mid-campaign kill: a narrower spec (one fs column of
    // the same grid) ran to completion, then the process died. Only
    // those cells' records exist — exactly the state an interrupted
    // 4-cell campaign leaves behind after finishing its first two.
    let mut partial = small_sweep_spec();
    partial.filesystems = vec![FsKind::Ext2];
    let killed = run_campaign_with(&partial, 2, &with_store(&dir)).expect("partial sweep");
    assert_eq!(killed.stats.executed, 2);

    // Resume the full campaign at both jobs counts: the surviving
    // cells load from the store, the missing column executes, and the
    // final report equals the uninterrupted run's bytes.
    for jobs in [1, 4] {
        let resumed = run_campaign_with(&spec, jobs, &with_store(&dir)).expect("resumed sweep");
        if jobs == 1 {
            assert_eq!(resumed.stats.cached, 2, "two cells survived the kill");
            assert_eq!(resumed.stats.executed, 2, "two cells still to run");
        } else {
            // Second resume pass: everything is cached now.
            assert_eq!(resumed.stats.executed, 0);
        }
        assert_eq!(resumed.report.to_csv(), ref_csv, "resume diverged (csv)");
        assert_eq!(
            resumed.report.to_json().to_string(),
            ref_json,
            "resume diverged (json)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_matches_cache_hit_output_and_refreshes_the_store() {
    let dir = store_dir("nocache");
    let spec = small_sweep_spec();
    let opts_cached = with_store(&dir);
    let opts_nocache = CampaignOptions {
        store: Some(StoreOptions {
            dir: dir.clone(),
            read_cache: false,
        }),
    };
    let cold = run_campaign_with(&spec, 2, &opts_cached).expect("cold sweep");
    // --no-cache ignores the warm store and executes everything...
    let forced = run_campaign_with(&spec, 2, &opts_nocache).expect("no-cache sweep");
    assert_eq!(forced.stats.executed, forced.stats.expanded);
    assert_eq!(forced.stats.cached, 0);
    // ...to the same bytes, and the refreshed records still hit after.
    assert_eq!(forced.report.to_csv(), cold.report.to_csv());
    let warm = run_campaign_with(&spec, 2, &opts_cached).expect("warm sweep");
    assert_eq!(warm.stats.executed, 0);
    assert_eq!(warm.report.to_csv(), cold.report.to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_salt_records_are_ignored_not_corrupted() {
    let dir = store_dir("stale");
    let spec = small_sweep_spec();
    let store = ResultStore::open(&dir).expect("open store");
    // Plant a record as a previous code version would have written it:
    // same cell, different salt — it hashes to a different address.
    let cells = spec.expand();
    let stale_identity = cell_identity(&spec, &cells[0], None).replace("salt=", "salt=old-");
    let stale_path = store.record_path(digest(&stale_identity));
    std::fs::write(&stale_path, "rocketbench-cell-record v0\nend\n").expect("plant stale record");
    // And a tampered record at an address the campaign *will* probe:
    // identity verification must reject it and re-execute the cell.
    let live_path = store.record_path(digest(&cell_identity(&spec, &cells[1], None)));
    std::fs::write(
        &live_path,
        "rocketbench-cell-record v1\nidentity forged\nend\n",
    )
    .expect("plant tampered record");
    drop(store);

    let run = run_campaign_with(&spec, 2, &with_store(&dir)).expect("sweep over stale store");
    assert_eq!(run.stats.cached, 0, "nothing loadable was cached");
    assert_eq!(run.stats.executed, run.stats.expanded);
    assert_eq!(run.report.to_csv(), golden("sweep_small.csv"));
    // The stale-salt record was ignored, not touched; the tampered one
    // was overwritten by the fresh execution of its cell.
    assert_eq!(
        std::fs::read_to_string(&stale_path).expect("stale record still present"),
        "rocketbench-cell-record v0\nend\n"
    );
    let refreshed = std::fs::read_to_string(&live_path).expect("refreshed record");
    assert!(refreshed.contains(&cells[1].key()));
    let warm = run_campaign_with(&spec, 2, &with_store(&dir)).expect("warm sweep");
    assert_eq!(warm.stats.executed, 0, "refreshed store is fully warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_axis_value_re_executes_only_the_new_column() {
    let dir = store_dir("column");
    let spec = small_sweep_spec();
    let cold = run_campaign_with(&spec, 2, &with_store(&dir)).expect("cold sweep");
    assert_eq!(cold.stats.expanded, 4);
    // Add ext3 to the fs axis: 2 new cells, 4 cached.
    let mut wider = small_sweep_spec();
    wider.filesystems = vec![FsKind::Ext2, FsKind::Ext3, FsKind::Xfs];
    let widened = run_campaign_with(&wider, 2, &with_store(&dir)).expect("widened sweep");
    assert_eq!(widened.stats.expanded, 6);
    assert_eq!(widened.stats.cached, 4, "old grid columns come from cache");
    assert_eq!(widened.stats.executed, 2, "only the ext3 column executes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_refuses_flight_recorder_campaigns() {
    let dir = store_dir("metrics");
    let mut spec = small_sweep_spec();
    spec.plan.obs.metrics = true;
    let err = run_campaign_with(&spec, 1, &with_store(&dir)).expect_err("metrics + store");
    assert!(err.to_string().contains("flight-recorder"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
