//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence at workspace level).

use proptest::prelude::*;
use rocketbench::simcache::cache::{CacheConfig, PageCache};
use rocketbench::simcache::policy::PolicyKind;
use rocketbench::simcache::readahead::ReadaheadConfig;
use rocketbench::simcache::writeback::WritebackConfig;
use rocketbench::simcore::rng::Rng;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;
use rocketbench::simdisk::device::{BlockDevice, IoRequest};
use rocketbench::simdisk::hdd::{Hdd, HddConfig};
use rocketbench::simfs::alloc::{BitmapAllocator, ExtentAllocator, Run};
use rocketbench::simfs::ext2::{Ext2Config, Ext2Fs};
use rocketbench::simfs::vfs::FileSystem;
use rocketbench::stats::histogram::Log2Histogram;
use rocketbench::stats::moments::Moments;
use rocketbench::stats::summary::percentile;

proptest! {
    /// Histogram totals and fractions are consistent under arbitrary
    /// merges.
    #[test]
    fn histogram_merge_consistency(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut ha = Log2Histogram::new();
        let mut hb = Log2Histogram::new();
        for &x in &a { ha.record(Nanos::from_nanos(x)); }
        for &x in &b { hb.record(Nanos::from_nanos(x)); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), (a.len() + b.len()) as u64);
        for k in 0..64 {
            prop_assert_eq!(merged.count(k), ha.count(k) + hb.count(k));
        }
        if merged.total() > 0 {
            let sum: f64 = (0..64).map(|k| merged.fraction(k)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Welford moments agree with the two-pass formulas on any input.
    #[test]
    fn moments_match_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let m = Moments::from_slice(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((m.sample_variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    /// Percentiles are monotone in q and bounded by the extremes.
    #[test]
    fn percentile_monotone(
        xs in proptest::collection::vec(-1e9f64..1e9, 1..100),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for q in sorted_q {
            let p = percentile(&xs, q).unwrap();
            prop_assert!(p >= last);
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p >= lo && p <= hi);
            last = p;
        }
    }

    /// The cache never exceeds capacity and never loses a page it did
    /// not evict, under any access pattern and any policy.
    #[test]
    fn cache_capacity_and_residency(
        policy_idx in 0usize..4,
        capacity in 4u64..64,
        accesses in proptest::collection::vec((0u64..128, 1u64..4), 1..400),
    ) {
        let mut cache = PageCache::new(CacheConfig {
            capacity_pages: capacity,
            policy: PolicyKind::ALL[policy_idx],
            readahead: ReadaheadConfig::disabled(),
            writeback: WritebackConfig::default(),
        });
        for (page, count) in accesses {
            let out = cache.read(1, page, count, 256, Nanos::ZERO);
            prop_assert!(cache.resident_pages() <= capacity);
            // Hit/miss accounting covers exactly the requested pages.
            prop_assert_eq!(out.hit_pages + out.miss_pages.len() as u64, count);
            // LRU guarantees the just-requested pages are resident (they
            // are the most recently used). CLOCK/2Q/ARC may legitimately
            // evict a page inserted earlier in the same request, so the
            // residency guarantee is policy-specific.
            if PolicyKind::ALL[policy_idx] == PolicyKind::Lru && count <= capacity {
                for p in page..page + count {
                    prop_assert!(cache.is_resident(1, p), "LRU lost fresh page {p}");
                }
            }
        }
    }

    /// Allocator safety: every allocated run is disjoint; free returns
    /// blocks exactly once; the free counter is exact.
    #[test]
    fn bitmap_allocator_disjoint_runs(
        ops in proptest::collection::vec((1u64..64, 0u64..1024, proptest::bool::ANY), 1..120),
    ) {
        let total = 1024;
        let mut a = BitmapAllocator::new(total, 128);
        let mut live: Vec<Run> = Vec::new();
        let mut occupied = vec![false; total as usize];
        for (count, goal, do_free) in ops {
            if do_free && !live.is_empty() {
                let r = live.pop().unwrap();
                a.free(r).unwrap();
                for b in r.start..r.start + r.len {
                    occupied[b as usize] = false;
                }
            } else if let Ok(runs) = a.alloc(count, goal) {
                for r in runs {
                    for b in r.start..r.start + r.len {
                        prop_assert!(!occupied[b as usize], "double allocation of {b}");
                        occupied[b as usize] = true;
                    }
                    live.push(r);
                }
            }
            let used: u64 = occupied.iter().filter(|&&x| x).count() as u64;
            prop_assert_eq!(a.free_blocks(), total - used);
        }
    }

    /// Extent allocator mirrors the same invariant.
    #[test]
    fn extent_allocator_disjoint_runs(
        ops in proptest::collection::vec((1u64..64, 0u64..1024, proptest::bool::ANY), 1..120),
    ) {
        let total = 1024;
        let mut a = ExtentAllocator::new(total);
        let mut live: Vec<Run> = Vec::new();
        let mut occupied = vec![false; total as usize];
        for (count, goal, do_free) in ops {
            if do_free && !live.is_empty() {
                let r = live.pop().unwrap();
                a.free(r).unwrap();
                for b in r.start..r.start + r.len {
                    occupied[b as usize] = false;
                }
            } else if let Ok(runs) = a.alloc(count, goal) {
                for r in runs {
                    for b in r.start..r.start + r.len {
                        prop_assert!(!occupied[b as usize], "double allocation of {b}");
                        occupied[b as usize] = true;
                    }
                    live.push(r);
                }
            }
            let used: u64 = occupied.iter().filter(|&&x| x).count() as u64;
            prop_assert_eq!(a.free_blocks(), total - used);
        }
    }

    /// File mapping is a bijection: every logical block of every file
    /// maps to exactly one physical block, and no two files share one.
    #[test]
    fn ext2_mapping_is_injective(sizes in proptest::collection::vec(1u64..200, 1..12)) {
        let mut fs = Ext2Fs::new(Ext2Config::for_blocks(16_384));
        let mut seen = std::collections::HashSet::new();
        for (i, blocks) in sizes.iter().enumerate() {
            let path = format!("/f{i}");
            let (ino, _) = fs.create(&path).unwrap();
            fs.set_size(ino, Bytes::kib(4) * *blocks).unwrap();
            let mut l = 0;
            while l < *blocks {
                let e = fs.map(ino, l, u64::MAX).unwrap();
                for off in 0..e.len {
                    prop_assert!(
                        seen.insert(e.physical + off),
                        "physical block {} mapped twice",
                        e.physical + off
                    );
                }
                l += e.len;
            }
        }
    }

    /// Disk service times are always positive and bounded by a sane
    /// ceiling (full stroke + rotation + transfer + margin).
    #[test]
    fn hdd_latency_bounds(blocks in proptest::collection::vec((0u64..1_000_000, 1u64..64), 1..100)) {
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        let mut now = Nanos::ZERO;
        for (block, count) in blocks {
            let lat = disk.service(&IoRequest::read(block, count), now);
            prop_assert!(lat > Nanos::ZERO);
            prop_assert!(
                lat < Nanos::from_millis(200),
                "latency {lat} absurd for {count} blocks"
            );
            now += lat;
        }
    }

    /// RNG forks are stable: forking twice with the same label yields
    /// identical streams regardless of interleaved draws.
    #[test]
    fn rng_fork_stability(seed in any::<u64>(), draws in 0usize..50) {
        let mut parent = Rng::new(seed);
        let mut f1 = parent.fork("child");
        for _ in 0..draws {
            parent.next_u64();
        }
        // Forks depend on parent state at fork time, so fork from a fresh
        // parent with the same seed.
        let parent2 = Rng::new(seed);
        let mut f2 = parent2.fork("child");
        for _ in 0..20 {
            prop_assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    /// Any `processes >= 1` schedule is a pure function of
    /// (workload, config, seed): rerunning reproduces the recording
    /// bit-for-bit, and sharding the surrounding campaign over any
    /// worker count never changes a byte of its report.
    #[test]
    fn multi_process_schedules_are_seed_and_jobs_deterministic(
        processes in 1u32..6,
        seed in any::<u64>(),
        jobs in 1usize..5,
    ) {
        use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
        use rocketbench::core::prelude::*;
        use rocketbench::core::testbed;

        // One engine run, repeated: identical ops and histogram.
        let cfg = EngineConfig {
            duration: Nanos::from_secs(1),
            window: Nanos::from_secs(1),
            seed,
            cold_start: true,
            prewarm: false,
            cpu_jitter_sigma: 0.0,
            max_errors: 100,
            processes,
            cores: 2,
            arrival: Arrival::Closed,
            obs: ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let run = || {
            let mut t = testbed::paper_ext2(Bytes::mib(256), seed);
            let w = personalities::varmail(10);
            let rec = Engine::run(&mut t, &w, &cfg).unwrap();
            (rec.ops, rec.errors, rec.duration, rec.histogram.clone())
        };
        prop_assert_eq!(run(), run());

        // The campaign wrapping: jobs never leak into the bytes.
        let mut plan = RunPlan::quick(seed);
        plan.protocol = Protocol::FixedRuns(1);
        plan.duration = Nanos::from_secs(1);
        let spec = SweepSpec {
            name: "prop".into(),
            personalities: vec![Personality::Varmail],
            file_counts: vec![10],
            filesystems: vec![FsKind::Ext2],
            cache_capacities: vec![Bytes::mib(32)],
            processes: vec![1, processes],
            plan,
            device: Bytes::mib(256),
            ..SweepSpec::default()
        };
        let serial = run_campaign(&spec, 1).unwrap();
        let sharded = run_campaign(&spec, jobs).unwrap();
        prop_assert_eq!(serial.to_csv(), sharded.to_csv());
    }

    /// Any open-loop run is a pure function of (workload, config,
    /// seed): the percentile rows its campaign emits never depend on
    /// the worker count, and rerunning reproduces them byte-for-byte.
    #[test]
    fn open_loop_percentiles_are_seed_and_jobs_deterministic(
        rate in 100u64..5_000,
        seed in any::<u64>(),
        jobs in 1usize..5,
    ) {
        use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
        use rocketbench::core::prelude::*;
        use rocketbench::core::testbed;

        // One engine run, repeated: an identical ledger and tail.
        let cfg = EngineConfig {
            duration: Nanos::from_secs(1),
            window: Nanos::from_secs(1),
            seed,
            cold_start: true,
            prewarm: false,
            cpu_jitter_sigma: 0.0,
            max_errors: 100,
            processes: 1,
            cores: 2,
            arrival: Arrival::Poisson { rate },
            obs: ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let run = || {
            let mut t = testbed::paper_ext2(Bytes::mib(256), seed);
            let w = personalities::varmail(10);
            let rec = Engine::run(&mut t, &w, &cfg).unwrap();
            rec.open_loop.unwrap()
        };
        let first = run();
        prop_assert_eq!(first.offered, first.completed + first.failed + first.dropped);
        prop_assert_eq!(&first, &run());

        // The campaign wrapping: jobs never leak into the bytes.
        let mut plan = RunPlan::quick(seed);
        plan.protocol = Protocol::FixedRuns(1);
        plan.duration = Nanos::from_secs(1);
        let spec = SweepSpec {
            name: "prop".into(),
            personalities: vec![Personality::Varmail],
            file_counts: vec![10],
            filesystems: vec![FsKind::Ext2],
            cache_capacities: vec![Bytes::mib(32)],
            arrivals: vec![Arrival::Closed, Arrival::Poisson { rate }],
            plan,
            device: Bytes::mib(256),
            ..SweepSpec::default()
        };
        let serial = run_campaign(&spec, 1).unwrap();
        let sharded = run_campaign(&spec, jobs).unwrap();
        prop_assert_eq!(serial.to_csv(), sharded.to_csv());
        prop_assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
    }

    /// Histogram merge is associative: (a + b) + c == a + (b + c),
    /// bucket for bucket — the property that lets a campaign merge
    /// per-run histograms in any grouping before taking quantiles.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        c in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let build = |xs: &[u64]| {
            let mut h = Log2Histogram::new();
            for &x in xs { h.record(Nanos::from_nanos(x)); }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.total(), right.total());
        for k in 0..64 {
            prop_assert_eq!(left.count(k), right.count(k));
        }
        prop_assert_eq!(left.quantile(0.5), right.quantile(0.5));
        prop_assert_eq!(left.quantile(0.99), right.quantile(0.99));
        prop_assert_eq!(left.quantile(0.999), right.quantile(0.999));
    }
}
