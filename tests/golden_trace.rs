//! Golden-trace regression tests: the committed v1 and v2 traces in
//! `examples/` must keep parsing, replaying cleanly, and producing
//! byte-identical characterization reports. Any change to the trace
//! format, the characterization math, or the render shows up here (and
//! in the matching CI job) as a diff against the committed snapshot —
//! format drift cannot land silently.

use rocketbench::core::prelude::*;
use rocketbench::replay::{replay_with, ReplayConfig};
use rocketbench::simcore::units::Bytes;

fn repo_file(name: &str) -> String {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn golden(name: &str) -> Trace {
    Trace::from_text(&repo_file(name)).expect("golden trace parses")
}

#[test]
fn golden_v1_profile_matches_snapshot() {
    let profile = characterize(&golden("golden_v1.trace")).render();
    assert_eq!(
        profile,
        repo_file("golden_v1.profile.txt"),
        "characterization drifted; if intentional, regenerate \
         examples/golden_v1.profile.txt with `rocketbench trace stats`"
    );
}

#[test]
fn golden_v2_profile_matches_snapshot() {
    let profile = characterize(&golden("golden_v2.trace")).render();
    assert_eq!(
        profile,
        repo_file("golden_v2.profile.txt"),
        "characterization drifted; if intentional, regenerate \
         examples/golden_v2.profile.txt with `rocketbench trace stats`"
    );
}

#[test]
fn golden_traces_replay_cleanly_under_every_policy() {
    for name in ["golden_v1.trace", "golden_v2.trace"] {
        let trace = golden(name);
        for timing in [
            Timing::Afap,
            Timing::Faithful,
            Timing::Scaled { factor: 10.0 },
        ] {
            for seed in [0, 1, 99] {
                let mut target = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 5);
                let result = replay_with(&mut target, &trace, &ReplayConfig { timing, seed });
                assert_eq!(
                    result.errors, 0,
                    "{name} under {timing} seed {seed}: {:?}",
                    result.first_error
                );
                assert_eq!(result.ops, trace.len() as u64);
            }
        }
    }
}

#[test]
fn golden_traces_roundtrip_and_stay_versioned() {
    let v1 = golden("golden_v1.trace");
    assert_eq!(v1.version, rocketbench::replay::TraceVersion::V1);
    let v2 = golden("golden_v2.trace");
    assert_eq!(v2.version, rocketbench::replay::TraceVersion::V2);
    assert_eq!(v2.stream_ids().len(), 2);
    // serialize -> parse is a fixed point for both.
    for t in [v1, v2] {
        let text = t.to_text().expect("serializes");
        assert_eq!(Trace::from_text(&text).expect("reparses"), t);
    }
}
