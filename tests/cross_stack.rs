//! Cross-crate integration: invariants that only show up when the whole
//! stack (fs + cache + disk + engine) runs together.

use rocketbench::core::prelude::*;
use rocketbench::simcore::rng::Rng;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn quick(seed: u64, secs: u64) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(secs),
        window: Nanos::from_secs(1),
        seed,
        cold_start: true,
        prewarm: false,
        ..Default::default()
    }
}

/// Whole-experiment determinism: every layer seeded, bit-identical
/// histograms across repeats.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut t = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 123);
        let w = personalities::fileserver(40);
        let rec = Engine::run(&mut t, &w, &quick(123, 8)).unwrap();
        (rec.ops, rec.errors, rec.histogram.clone())
    };
    assert_eq!(run(), run());
}

/// The cache never exceeds capacity, whatever the workload does.
#[test]
fn cache_capacity_invariant_under_churn() {
    let mut t = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 5);
    t.set_cache_capacity_pages(2048);
    let w = personalities::postmark(60);
    Engine::run(&mut t, &w, &quick(5, 10)).unwrap();
    assert!(
        t.stack().cache().resident_pages() <= 2048,
        "cache overflow: {}",
        t.stack().cache().resident_pages()
    );
}

/// Space accounting: heavy create/delete churn ends where it started.
#[test]
fn filesystem_space_is_conserved() {
    for kind in FsKind::ALL {
        let mut t = rocketbench::core::testbed::paper_fs(kind, Bytes::gib(1), 9);
        // One warm-up cycle so the root directory's entry blocks are
        // allocated (directories grow but never shrink, as on real ext2).
        for i in 0..50 {
            t.create(&format!("/churn{i}")).unwrap();
        }
        for i in 0..50 {
            t.unlink(&format!("/churn{i}")).unwrap();
        }
        let used_before = t.stack().fs().used();
        // Create, grow and delete many files by hand.
        for i in 0..50 {
            let path = format!("/churn{i}");
            t.create(&path).unwrap();
            let fd = t.open(&path).unwrap();
            t.set_size(fd, Bytes::kib(4) * (i + 1)).unwrap();
            t.close(fd).unwrap();
        }
        for i in 0..50 {
            t.unlink(&format!("/churn{i}")).unwrap();
        }
        let used_after = t.stack().fs().used();
        assert_eq!(
            used_before.as_u64(),
            used_after.as_u64(),
            "{}: space leaked",
            kind.name()
        );
    }
}

/// Virtual time only moves forward, and ops always take positive time.
#[test]
fn time_is_monotone_across_operations() {
    let mut t = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 3);
    let mut rng = Rng::new(4);
    t.create("/f").unwrap();
    let fd = t.open("/f").unwrap();
    t.set_size(fd, Bytes::mib(32)).unwrap();
    let mut last = t.now();
    for _ in 0..500 {
        let page = rng.below(8000);
        let lat = t.read(fd, Bytes::kib(4) * page, Bytes::kib(8)).unwrap();
        assert!(lat > Nanos::ZERO);
        assert!(t.now() > last);
        last = t.now();
    }
}

/// The three file systems produce *different layouts* for the same
/// logical content — the substrate the paper's Figure 2 differences
/// stand on.
#[test]
fn filesystems_lay_out_differently() {
    let mut layouts = Vec::new();
    for kind in FsKind::ALL {
        let mut t = rocketbench::core::testbed::paper_fs(kind, Bytes::gib(1), 0);
        t.mkdir("/d").unwrap();
        t.create("/d/f").unwrap();
        let fd = t.open("/d/f").unwrap();
        t.set_size(fd, Bytes::mib(8)).unwrap();
        // First physical block of the file.
        let ino = 4; // root=2, /d=3, /d/f=4
        let ext = t.stack().fs().map(ino, 0, 1).unwrap();
        layouts.push((kind.name(), ext.physical));
    }
    // At least two of the three place the file at different addresses.
    let distinct: std::collections::HashSet<u64> = layouts.iter().map(|&(_, b)| b).collect();
    assert!(distinct.len() >= 2, "all layouts identical: {layouts:?}");
}

/// Identical workload on the simulated target and the real host target:
/// both complete through the same engine path.
#[test]
fn engine_drives_real_and_sim_targets() {
    let w = personalities::metadata_only(20);
    // Sim.
    let mut sim = rocketbench::core::testbed::paper_ext2(Bytes::gib(1), 1);
    let sim_rec = Engine::run(&mut sim, &w, &quick(1, 3)).unwrap();
    assert!(sim_rec.ops > 100);
    // Real (temp dir); wall-clock duration, so keep it tiny.
    let dir = std::env::temp_dir().join(format!("rb-int-{}", std::process::id()));
    let mut real = RealFsTarget::new(&dir).unwrap();
    let cfg = EngineConfig {
        duration: Nanos::from_millis(200),
        window: Nanos::from_millis(50),
        seed: 1,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    let real_rec = Engine::run(&mut real, &w, &cfg).unwrap();
    assert!(real_rec.ops > 0, "real target did nothing");
    std::fs::remove_dir_all(&dir).ok();
}

/// Aging before measuring changes layout quality measurably (the
/// honest-benchmarking knob).
#[test]
fn aging_degrades_sequential_bandwidth() {
    use rocketbench::simfs::aging::{age_filesystem, AgingConfig};
    use rocketbench::simfs::ext2::{Ext2Config, Ext2Fs};
    use rocketbench::simfs::vfs::FileSystem;

    let mut aged = Ext2Fs::new(Ext2Config::for_blocks(65_536));
    age_filesystem(
        &mut aged,
        &AgingConfig {
            live_files: 600,
            rounds: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let (ino, _) = aged.create("/big").unwrap();
    aged.set_size(ino, Bytes::mib(32)).unwrap();
    let mut extents_aged = 0;
    let mut l = 0;
    while let Ok(e) = aged.map(ino, l, u64::MAX) {
        extents_aged += 1;
        l += e.len;
        if l >= 32 * 256 {
            break;
        }
    }
    let mut fresh = Ext2Fs::new(Ext2Config::for_blocks(65_536));
    let (ino2, _) = fresh.create("/big").unwrap();
    fresh.set_size(ino2, Bytes::mib(32)).unwrap();
    let first = fresh.map(ino2, 0, u64::MAX).unwrap();
    assert!(
        extents_aged > 2 && first.len >= 2048,
        "aging had no layout effect: aged extents {extents_aged}, fresh first {}",
        first.len
    );
}
