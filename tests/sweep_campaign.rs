//! End-to-end campaign test: a tiny 2 x 2 sweep (two file sizes, two
//! file systems) through the public facade API, exercising expansion,
//! sharded execution, determinism across job counts, and every report
//! format.

use rocketbench::core::campaign::{run_campaign, Personality, SweepSpec};
use rocketbench::core::dimensions::{Coverage, Dimension};
use rocketbench::core::runner::{Protocol, RunPlan};
use rocketbench::core::testbed::FsKind;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

/// 2 sizes x 2 file systems, short runs: fast enough for debug-mode CI.
fn two_by_two() -> SweepSpec {
    let mut plan = RunPlan::quick(7);
    plan.protocol = Protocol::FixedRuns(2);
    plan.duration = Nanos::from_secs(3);
    plan.window = Nanos::from_secs(1);
    plan.tail_windows = 2;
    SweepSpec {
        name: "2x2".into(),
        personalities: vec![Personality::RandomRead],
        traces: Vec::new(),
        file_sizes: vec![Bytes::mib(4), Bytes::mib(96)],
        file_counts: vec![10],
        filesystems: vec![FsKind::Ext2, FsKind::Xfs],
        cache_capacities: vec![Bytes::mib(48)],
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rocketbench::faults::RetryPolicy::None,
        slo_p99: None,
        plan,
        device: Bytes::mib(512),
        run_budget: None,
    }
}

#[test]
fn two_by_two_sweep_end_to_end() {
    let spec = two_by_two();
    assert_eq!(spec.expand().len(), 4);

    let report = run_campaign(&spec, 2).expect("campaign runs");
    assert_eq!(report.cells.len(), 4);
    for cell in &report.cells {
        assert_eq!(cell.samples.len(), 2);
        assert!(cell.summary.mean > 0.0, "no throughput: {:?}", cell.cell);
        assert_eq!(cell.errors, 0);
    }

    // The small file fits the 48 MiB cache, the large one does not: the
    // campaign reproduces the paper's cliff within a single report.
    let small_ext2 = &report.cells[0];
    let large_ext2 = &report.cells[2];
    assert_eq!(small_ext2.cell.file_size, Bytes::mib(4));
    assert_eq!(large_ext2.cell.file_size, Bytes::mib(96));
    assert!(
        small_ext2.summary.mean > 3.0 * large_ext2.summary.mean,
        "no cache cliff across cells: {} vs {}",
        small_ext2.summary.mean,
        large_ext2.summary.mean
    );

    // Random read isolates the caching dimension.
    assert_eq!(
        report.coverage().get(Dimension::Caching),
        Coverage::Isolates
    );
    let groups = report.dimension_groups();
    assert!(groups
        .iter()
        .any(|(d, s)| *d == Dimension::Caching && s.n == 4));
}

#[test]
fn job_count_does_not_change_any_format() {
    let spec = two_by_two();
    let serial = run_campaign(&spec, 1).expect("serial campaign");
    let sharded = run_campaign(&spec, 4).expect("sharded campaign");
    assert_eq!(serial.to_csv(), sharded.to_csv());
    assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
    for (a, b) in serial.cells.iter().zip(&sharded.cells) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.samples, b.samples);
    }
}

#[test]
fn report_formats_agree_on_cell_count() {
    let spec = two_by_two();
    let report = run_campaign(&spec, 4).expect("campaign runs");
    // CSV: header + one line per cell.
    assert_eq!(report.to_csv().lines().count(), 5);
    // JSON: parseable shape markers without a JSON parser dependency.
    let json = report.to_json().to_string();
    assert_eq!(json.matches("\"fs\":").count(), 4);
    assert!(json.contains("\"campaign\":\"2x2\""));
    assert!(json.contains("\"coverage\":"));
    // ASCII render: one table row per cell (the chart legend repeats
    // the personality/fs pair but not the size).
    let text = report.render();
    assert_eq!(text.matches("randomread/4.0MiB").count(), 2);
    assert_eq!(text.matches("randomread/96.0MiB").count(), 2);
}
