//! The workload × file-system matrix: every personality completes on
//! every simulated file system, and the per-system differences the
//! models are built to show actually appear.

use rocketbench::core::prelude::*;
use rocketbench::simcore::time::Nanos;
use rocketbench::simcore::units::Bytes;

fn cfg(seed: u64, secs: u64) -> EngineConfig {
    EngineConfig {
        duration: Nanos::from_secs(secs),
        window: Nanos::from_secs(1),
        seed,
        cold_start: true,
        prewarm: false,
        max_errors: 200,
        ..Default::default()
    }
}

#[test]
fn every_personality_on_every_fs() {
    let workloads = [
        personalities::random_read(Bytes::mib(16)),
        personalities::sequential_read(Bytes::mib(32)),
        personalities::random_write(Bytes::mib(16)),
        personalities::webserver(60),
        personalities::fileserver(40),
        personalities::varmail(40),
        personalities::postmark(40),
        personalities::metadata_only(40),
    ];
    for kind in FsKind::ALL {
        for w in &workloads {
            let mut t = rocketbench::core::testbed::paper_fs(kind, Bytes::gib(1), 1);
            let rec = Engine::run(&mut t, w, &cfg(1, 4)).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", w.name, kind.name());
            });
            assert!(
                rec.ops > 20,
                "{} on {}: only {} ops",
                w.name,
                kind.name(),
                rec.ops
            );
            assert!(
                rec.errors <= rec.ops / 5,
                "{} on {}: {} errors vs {} ops",
                w.name,
                kind.name(),
                rec.errors,
                rec.ops
            );
        }
    }
}

/// fsync-heavy varmail pays the journal tax: ext3 issues strictly more
/// media writes than ext2 for the same op stream shape.
#[test]
fn varmail_journal_tax() {
    let measure = |kind: FsKind| {
        let mut t = rocketbench::core::testbed::paper_fs(kind, Bytes::gib(1), 2);
        let w = personalities::varmail(40);
        Engine::run(&mut t, &w, &cfg(2, 6)).unwrap();
        let d = t.stack().disk_stats();
        (d.writes, t.stack().stats().fsyncs)
    };
    let (ext2_writes, ext2_fsyncs) = measure(FsKind::Ext2);
    let (ext3_writes, ext3_fsyncs) = measure(FsKind::Ext3);
    assert!(ext2_fsyncs > 0 && ext3_fsyncs > 0);
    // Per-fsync-ish write traffic: ext3 adds journal records.
    let ext2_rate = ext2_writes as f64 / ext2_fsyncs.max(1) as f64;
    let ext3_rate = ext3_writes as f64 / ext3_fsyncs.max(1) as f64;
    assert!(
        ext3_rate > ext2_rate,
        "journal made ext3 cheaper?! ext2 {ext2_rate:.1} vs ext3 {ext3_rate:.1} writes/fsync"
    );
}

/// Sequential streaming is far faster than random reads on every fs —
/// the most basic sanity of the disk + readahead path.
#[test]
fn sequential_beats_random_everywhere() {
    for kind in FsKind::ALL {
        let run = |w: Workload| {
            let mut t = rocketbench::core::testbed::paper_fs(kind, Bytes::gib(1), 3);
            t.set_cache_capacity_pages(2048); // keep the cache out of it
            Engine::run(&mut t, &w, &cfg(3, 8)).unwrap()
        };
        let seq = run(personalities::sequential_read(Bytes::mib(256)));
        let rnd = run(personalities::random_read(Bytes::mib(256)));
        // Bytes per second: sequential reads 64 KiB/op, random 8 KiB/op.
        let seq_bw = seq.ops_per_sec() * 64.0;
        let rnd_bw = rnd.ops_per_sec() * 8.0;
        assert!(
            seq_bw > 4.0 * rnd_bw,
            "{}: sequential {seq_bw:.0} KiB/s not ≫ random {rnd_bw:.0} KiB/s",
            kind.name()
        );
    }
}

/// Zipf-skewed webserver traffic gets a much better hit ratio than
/// uniform traffic over the same file population — popularity matters,
/// and the cache model honours it.
#[test]
fn zipf_popularity_improves_hit_ratio() {
    let mut zipf_w = personalities::webserver(2000);
    zipf_w.ops.truncate(1); // whole-file reads only, no log append
    let mut uniform_w = zipf_w.clone();
    uniform_w.zipf_theta = 0.0;

    let run = |w: &Workload| {
        let mut t = rocketbench::core::testbed::paper_fs(FsKind::Ext2, Bytes::gib(1), 4);
        // ~2000 files x ~12 KiB mean ≈ 24 MiB working set, 4 MiB cache:
        // capacity pressure is real, so popularity skew must show.
        t.set_cache_capacity_pages(1024);
        Engine::run(&mut t, w, &cfg(4, 8))
            .unwrap()
            .hit_ratio
            .unwrap()
    };
    let zipf_hits = run(&zipf_w);
    let uniform_hits = run(&uniform_w);
    assert!(
        zipf_hits > uniform_hits + 0.1,
        "zipf {zipf_hits:.3} not better than uniform {uniform_hits:.3}"
    );
}

/// The survey data renders and its totals match the published table.
#[test]
fn survey_is_faithful() {
    let rows = table1();
    assert_eq!(rows.len(), 19);
    let rendered = render_table1(&rows);
    // Spot-check the famous numbers straight from the paper.
    for needle in ["237", "67", "30", "17", "Postmark", "Ad-hoc", "Filebench"] {
        assert!(rendered.contains(needle), "missing {needle}");
    }
}
