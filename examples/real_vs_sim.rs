//! Drives the identical workload against the simulated stack and a real
//! temporary directory on the host — the same harness code path used as
//! an actual measurement tool.
//!
//! Host numbers depend on your machine and page cache (exactly as the
//! paper warns); the example prints both and the latency histograms so
//! the regimes can be compared by shape, not by absolute value.
//!
//! ```sh
//! cargo run --release --example real_vs_sim
//! ```

use rb_core::prelude::*;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

fn run_on(target: &mut dyn Target, label: &str) {
    let workload = personalities::random_read(Bytes::mib(32));
    let config = EngineConfig {
        duration: Nanos::from_secs(3),
        window: Nanos::from_millis(500),
        seed: 1,
        cold_start: false, // host cache cannot be dropped unprivileged
        prewarm: true,
        ..Default::default()
    };
    match Engine::run(target, &workload, &config) {
        Ok(rec) => {
            println!("[{label}] {}", target.name());
            println!("  {:.0} ops/s over {}", rec.ops_per_sec(), rec.duration);
            let lo = rec.histogram.min_bucket().unwrap_or(0);
            let hi = (rec.histogram.max_bucket().unwrap_or(20) + 2).min(40);
            print!("{}", rec.histogram.render_ascii(lo, hi, 40));
            println!();
        }
        Err(e) => println!("[{label}] failed: {e}"),
    }
}

fn main() {
    // Simulated testbed.
    let mut sim = rb_core::testbed::paper_ext2(Bytes::gib(1), 1);
    run_on(&mut sim, "sim");

    // Real host directory (best effort; requires a writable temp dir).
    let dir = std::env::temp_dir().join(format!("rocketbench-demo-{}", std::process::id()));
    match RealFsTarget::new(&dir) {
        Ok(mut real) => {
            run_on(&mut real, "real");
            std::fs::remove_dir_all(&dir).ok();
            println!("The real run is warm-cache (no drop_caches without root),");
            println!("so it should resemble the sim's memory-bound regime: a");
            println!("single microsecond-scale peak.");
        }
        Err(e) => println!("[real] skipped: {e}"),
    }
}
