//! The paper's prediction, realized: "More modern file systems rely on
//! multiple cache levels (using Flash memory or network). In this case
//! the performance curve will have multiple distinctive steps."
//!
//! This example puts a flash tier between the page cache and the disk
//! and shows the *tri-modal* latency histogram: a DRAM peak (~4 µs), a
//! flash peak (~100 µs) and a disk peak (~10 ms).
//!
//! ```sh
//! cargo run --release --example multi_tier
//! ```

use rb_core::prelude::*;
use rb_simcache::cache::CacheConfig;
use rb_simcore::time::Nanos;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_simdisk::hdd::{Hdd, HddConfig};
use rb_simdisk::ssd::{Ssd, SsdConfig};
use rb_simdisk::tiered::{TierConfig, TieredDevice};
use rb_simfs::ext2::{Ext2Config, Ext2Fs};
use rb_simfs::stack::{StackConfig, StorageStack};
use rb_stats::peaks::{classify_modality, find_peaks};

fn main() {
    // Three-level hierarchy: 64 MiB DRAM page cache, 256 MiB flash tier,
    // mechanical disk. Working set: 512 MiB, so each level holds a share.
    let device_blocks = Bytes::gib(1).div_ceil(PAGE_SIZE);
    let tiered = TieredDevice::new(
        Box::new(Ssd::new(SsdConfig::consumer_sata())),
        Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
        TierConfig {
            cache_blocks: Bytes::mib(256).div_ceil(PAGE_SIZE),
            promote_on_read: true,
        },
    );
    let cache = CacheConfig {
        capacity_pages: Bytes::mib(64).div_ceil(PAGE_SIZE),
        ..CacheConfig::paper_testbed()
    };
    let stack = StorageStack::new(
        Box::new(Ext2Fs::new(Ext2Config::for_blocks(device_blocks))),
        cache,
        Box::new(tiered),
        StackConfig::default(),
    );
    let mut target = SimTarget::new(stack);

    let workload = personalities::random_read(Bytes::mib(512));
    let config = EngineConfig {
        duration: Nanos::from_secs(120),
        window: Nanos::from_secs(10),
        seed: 7,
        cold_start: true,
        prewarm: true,
        ..Default::default()
    };
    let rec = Engine::run(&mut target, &workload, &config).expect("run");

    println!("512 MiB working set over DRAM(64 MiB) / flash(256 MiB) / disk:\n");
    println!("{}", rec.histogram.render_ascii(8, 27, 50));
    println!("modality: {:?}", classify_modality(&rec.histogram));
    for p in find_peaks(&rec.histogram, 4, 0.02) {
        println!(
            "  peak at bucket {:>2} (~{}) mass {:>5.1}%",
            p.bucket,
            rb_stats::histogram::bucket_label(p.bucket),
            p.mass * 100.0
        );
    }
    println!();
    println!("Three distinctive steps, exactly as the paper predicts for");
    println!("multi-level caches — and a mean latency that describes none");
    println!("of the three.");
}
