//! Quickstart: run the paper's workload on the paper's machine and see
//! why single-number reporting misleads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rb_core::analysis::Regime;
use rb_core::prelude::*;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

fn measure(file_size: Bytes) -> Recording {
    // The testbed from the paper's Section 3: Maxtor-class disk, 512 MiB
    // RAM (410 MiB of page cache), ext2.
    let mut target = rb_core::testbed::paper_ext2(Bytes::gib(2), 42);
    // "One thread randomly reading from a single file", 8 KiB at a time.
    let workload = personalities::random_read(file_size);
    let config = EngineConfig {
        duration: Nanos::from_secs(60),
        window: Nanos::from_secs(10),
        seed: 42,
        cold_start: true,
        prewarm: true, // jump to steady state
        ..Default::default()
    };
    Engine::run(&mut target, &workload, &config).expect("run")
}

fn main() {
    println!("How good is the random-read performance of ext2?");
    println!("(the paper's deliberately 'simple' question)\n");

    for size in [Bytes::mib(64), Bytes::mib(416), Bytes::mib(1024)] {
        let rec = measure(size);
        let regime = Regime::classify(&rec);
        println!(
            "file {:>9}: {:>8.0} ops/s   hit-ratio {:>5.3}   regime: {}",
            format!("{size}"),
            rec.ops_per_sec(),
            rec.hit_ratio.unwrap_or(f64::NAN),
            regime.label(),
        );
    }

    println!();
    println!("Same file system, same disk, same \"simple\" workload —");
    println!("and the answer spans two orders of magnitude depending on");
    println!("one parameter. That is the paper's point: report curves and");
    println!("regimes, not a number.");
}
