//! The fragility demonstration: reruns a "careful" benchmark protocol
//! (10 repetitions, mean ± standard deviation) at three file sizes and
//! shows the transition region blowing up — the paper's Figure 1 story
//! condensed, with the harness's fragility analysis on top.
//!
//! ```sh
//! cargo run --release --example fragile_benchmark
//! ```

use rb_core::prelude::*;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

fn main() {
    // 10 runs per size, ±3 MiB cache jitter: the few megabytes of OS
    // memory wobble the paper says you cannot control.
    let plan = RunPlan {
        protocol: Protocol::FixedRuns(10),
        duration: Nanos::from_secs(90),
        window: Nanos::from_secs(10),
        tail_windows: 6,
        base_seed: 7,
        cache_capacity: Some(rb_core::testbed::PAPER_CACHE),
        cache_jitter: Bytes::mib(3),
        cold_start: true,
        prewarm: true,
        processes: 1,
        arrival: Arrival::Closed,
        obs: ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };

    println!("10 runs each; mean ± sd (RSD%) of steady-state ops/s\n");
    let mut sweep = Vec::new();
    for size in [
        Bytes::mib(256),
        Bytes::mib(384),
        Bytes::mib(412),
        Bytes::mib(448),
        Bytes::mib(640),
    ] {
        let workload = personalities::random_read(size);
        let mr = run_many(
            |seed| rb_core::testbed::paper_ext2(Bytes::gib(2), seed),
            &workload,
            &plan,
        )
        .expect("experiment");
        // The verdict is the harness noticing regime-straddling runs on
        // its own: fragile sizes report "mixed-regime", stable ones
        // "fixed" (no stopping rule under FixedRuns).
        println!(
            "  {:>9}  {}  [{}]",
            format!("{size}"),
            mr.summary.render(),
            mr.verdict
        );
        sweep.push((size.as_mib_f64(), mr.samples()));
    }

    let report = FragilityReport::from_sweep(&sweep);
    println!();
    if let Some(cliff) = &report.cliff {
        println!(
            "cliff detected: {:.0} -> {:.0} MiB, throughput drops {:.1}x",
            cliff.x_before,
            cliff.x_after,
            cliff.drop_factor()
        );
    }
    if let Some((x, rsd)) = report.max_rsd_at {
        println!("most fragile point: {x:.0} MiB at {rsd:.0}% RSD");
        println!();
        println!("At that size, the SAME benchmark with the SAME parameters");
        println!("returns answers differing by {rsd:.0}% of the mean, because a");
        println!("few megabytes of cache availability decide whether reads");
        println!("hit memory or the disk. \"Benchmarks are very fragile.\"");
    }
}
