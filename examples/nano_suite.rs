//! Runs the Section 4 nano-benchmark suite — the paper's proposed
//! replacement for single-number benchmarks — against all three
//! simulated file systems and prints the per-dimension comparison.
//!
//! ```sh
//! cargo run --release --example nano_suite
//! ```

use rb_core::nano::{render_report, run_suite, NanoConfig};
use rb_core::testbed::FsKind;

fn main() {
    let config = NanoConfig::quick();
    println!("The paper: \"a file system benchmark should be a suite of");
    println!("nano-benchmarks where each individual test measures a");
    println!("particular aspect of file system performance\".\n");

    let mut reports = Vec::new();
    for kind in FsKind::ALL {
        let report = run_suite(kind, &config).expect("suite");
        print!("{}", render_report(&report));
        println!();
        reports.push(report);
    }

    // A cross-system digest: winner per component. Note there is no
    // overall winner — that is the point.
    println!("component winners (higher is better where meaningful):");
    for component in [
        ("in-memory-read", "throughput"),
        ("disk-layout-sequential", "bandwidth"),
        ("disk-layout-random", "throughput"),
        ("metadata-ops", "throughput"),
    ] {
        let (comp, metric) = component;
        let mut best: Option<(&str, f64)> = None;
        for r in &reports {
            if let Some(v) = r.component(comp).and_then(|c| c.metric(metric)) {
                if best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((&r.target, v));
                }
            }
        }
        if let Some((who, v)) = best {
            println!("  {comp:<24} {who} ({v:.0})");
        }
    }
    println!("\nDifferent dimensions, different winners: \"the answer can");
    println!("never be a single number or the result of a single benchmark\".");
}
