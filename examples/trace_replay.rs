//! Traces as portable artifacts: record a workload once, replay it on
//! every file system under every timing policy — the paper's fix for
//! "almost none of those traces are widely available", extended with
//! the replay-timing taxonomy.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use rb_core::prelude::*;
use rb_core::trace::{replay_with, Recorder, ReplayConfig, Transform};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

fn main() {
    // 1. Record a varmail-style session on ext2. The recorder emits a
    //    v2 trace: each op is stamped with its stream id and arrival
    //    time, which is what makes faithful replay possible.
    let mut origin = rb_core::testbed::paper_ext2(Bytes::gib(1), 1);
    let mut recorder = Recorder::new(&mut origin);
    let workload = personalities::varmail(25);
    let config = EngineConfig {
        duration: Nanos::from_secs(5),
        window: Nanos::from_secs(1),
        seed: 1,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    Engine::run(&mut recorder, &workload, &config).expect("record");
    let trace = recorder.finish();
    let text = trace.to_text().expect("engine paths are whitespace-free");
    println!(
        "recorded {} operations ({} bytes as {} text)\n",
        trace.len(),
        text.len(),
        trace.version.label()
    );
    println!("first lines of the portable trace:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // 2. The text round-trips: this is what you would deposit publicly.
    let parsed = rb_core::trace::Trace::from_text(&text).expect("parse");
    assert_eq!(parsed, trace);

    // 3. What did we actually capture? Characterize before replaying.
    println!("\n{}", characterize(&parsed).render());

    // 4. Replay the identical operation stream on each file system,
    //    as fast as possible (peak service capacity).
    println!("replaying the same trace everywhere (afap):");
    for kind in FsKind::ALL {
        let mut target = rb_core::testbed::paper_fs(kind, Bytes::gib(1), 1);
        let result = replay(&mut target, &parsed);
        println!(
            "  {:>5}: {:>6} ops, {:>3} errors, {:>10} virtual time, p50 {}",
            kind.name(),
            result.ops,
            result.errors,
            format!("{}", result.duration),
            result
                .histogram
                .quantile(0.5)
                .map(|n| format!("{n}"))
                .unwrap_or_default(),
        );
    }

    // 5. The timing policy is part of the experiment definition: the
    //    same trace on the same fs measures different things under
    //    different policies.
    println!("\none trace, one fs (ext2), three timing policies:");
    for timing in [
        Timing::Afap,
        Timing::Faithful,
        Timing::Scaled { factor: 2.0 },
    ] {
        let mut target = rb_core::testbed::paper_ext2(Bytes::gib(1), 1);
        let result = replay_with(&mut target, &parsed, &ReplayConfig { timing, seed: 1 });
        println!(
            "  {:>9}: {:>10} virtual time, {:>6.0} ops/s",
            timing.label(),
            format!("{}", result.duration),
            result.ops_per_sec()
        );
    }

    // 6. And one capture yields many scenarios: spatially scale the
    //    trace onto two disjoint namespaces (two concurrent streams)
    //    and let the dependency-aware replayer interleave them.
    let doubled = Transform::Scale { clones: 2 }
        .apply(&parsed)
        .expect("scale");
    let mut target = rb_core::testbed::paper_ext2(Bytes::gib(1), 1);
    let result = replay_with(
        &mut target,
        &doubled,
        &ReplayConfig {
            timing: Timing::Afap,
            seed: 1,
        },
    );
    println!(
        "\nspatially scaled x2: {} ops over {} streams, {} errors, {} virtual time",
        result.ops,
        doubled.stream_ids().len(),
        result.errors,
        result.duration
    );
    println!("\nSame ops, comparable numbers — because the *workload* is now");
    println!("a shareable, transformable artifact instead of a private memory.");
}
