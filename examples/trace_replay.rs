//! Traces as portable artifacts: record a workload once, replay it on
//! every file system — the paper's fix for "almost none of those traces
//! are widely available".
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use rb_core::prelude::*;
use rb_core::trace::{replay, Recorder};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

fn main() {
    // 1. Record a varmail-style session on ext2.
    let mut origin = rb_core::testbed::paper_ext2(Bytes::gib(1), 1);
    let mut recorder = Recorder::new(&mut origin);
    let workload = personalities::varmail(25);
    let config = EngineConfig {
        duration: Nanos::from_secs(5),
        window: Nanos::from_secs(1),
        seed: 1,
        cold_start: false,
        prewarm: false,
        ..Default::default()
    };
    Engine::run(&mut recorder, &workload, &config).expect("record");
    let trace = recorder.finish();
    let text = trace.to_text().expect("engine paths are whitespace-free");
    println!(
        "recorded {} operations ({} bytes as text)\n",
        trace.ops.len(),
        text.len()
    );
    println!("first lines of the portable trace:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // 2. The text round-trips: this is what you would deposit publicly.
    let parsed = rb_core::trace::Trace::from_text(&text).expect("parse");
    assert_eq!(parsed, trace);

    // 3. Replay the identical operation stream on each file system.
    println!("\nreplaying the same trace everywhere:");
    for kind in FsKind::ALL {
        let mut target = rb_core::testbed::paper_fs(kind, Bytes::gib(1), 1);
        let result = replay(&mut target, &parsed);
        println!(
            "  {:>5}: {:>6} ops, {:>3} errors, {:>10} virtual time, p50 {}",
            kind.name(),
            result.ops,
            result.errors,
            format!("{}", result.duration),
            result
                .histogram
                .quantile(0.5)
                .map(|n| format!("{n}"))
                .unwrap_or_default(),
        );
    }
    println!("\nSame ops, comparable numbers — because the *workload* is now");
    println!("a shareable artifact instead of a private memory.");
}
