//! "Which file system is better?" — answered the way the paper demands:
//! per dimension, per regime, with statistical tests, and with an
//! explicit refusal when the comparison is unsound.
//!
//! ```sh
//! cargo run --release --example compare_filesystems
//! ```

use rb_core::analysis::{compare_systems, Regime};
use rb_core::prelude::*;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

/// Measures steady-state random-read throughput: N runs on one kind.
fn sample(kind: FsKind, size: Bytes, runs: u32) -> (Vec<f64>, Regime) {
    let plan = RunPlan {
        protocol: Protocol::FixedRuns(runs),
        duration: Nanos::from_secs(60),
        window: Nanos::from_secs(10),
        tail_windows: 3,
        base_seed: 11,
        cache_capacity: Some(rb_core::testbed::PAPER_CACHE),
        cache_jitter: Bytes::mib(3),
        cold_start: true,
        prewarm: true,
        processes: 1,
        arrival: Arrival::Closed,
        obs: ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let workload = personalities::random_read(size);
    let mr = run_many(
        |seed| rb_core::testbed::paper_fs(kind, Bytes::gib(2), seed),
        &workload,
        &plan,
    )
    .expect("runs");
    let regime = Regime::classify(&mr.outcomes[0].recording);
    (mr.samples(), regime)
}

fn main() {
    println!("ext2 vs xfs, random read, three working-set sizes\n");
    for (label, size) in [
        ("memory-bound (128 MiB)", Bytes::mib(128)),
        ("transition  (412 MiB)", Bytes::mib(412)),
        ("disk-bound  (896 MiB)", Bytes::mib(896)),
    ] {
        let (a, ra) = sample(FsKind::Ext2, size, 6);
        let (b, rb) = sample(FsKind::Xfs, size, 6);
        let verdict = compare_systems("ext2", &a, ra, "xfs", &b, rb).expect("test");
        println!("[{label}]");
        println!(
            "  ext2 mean {:.0} ops/s, xfs mean {:.0} ops/s",
            a.iter().sum::<f64>() / a.len() as f64,
            b.iter().sum::<f64>() / b.len() as f64,
        );
        println!("  verdict: {}", verdict.explanation);
        println!("  sound: {}\n", if verdict.sound { "yes" } else { "NO" });
    }
    println!("The harness blesses only same-regime, out-of-transition");
    println!("comparisons — the statistical discipline the paper calls for.");
}
