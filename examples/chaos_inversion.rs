//! The chaos demonstration: the same two workloads, ranked on a
//! healthy testbed and again on a degraded one, swap places.
//!
//! A mail server (varmail: appends + fsyncs, every durability point a
//! journal commit) outruns a cache-resident content server (128 KiB
//! random reads of a hot 256 MiB object set) when the disk is healthy.
//! Arm a fault plan — an 8× slower disk with a sprinkle of transient
//! EIO — and the ranking inverts: the mail server stalls behind its
//! journal while the content server, which never touches the device,
//! does not notice. A benchmark number without its environment is not
//! a result; "fast" is a property of the pair.
//!
//! The run is self-validating (it exits non-zero if the ledgers do not
//! balance or the inversion disappears), so CI runs it as a check:
//!
//! ```sh
//! cargo run --release --example chaos_inversion
//! ```
//!
//! See `docs/FAULTS.md` for the fault-plan grammar and the ledger
//! identity this example verifies.

use rb_core::prelude::*;
use rb_core::testbed;
use rb_simcore::dist::Dist;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

/// One deterministic serial run; returns steady-state ops/s and
/// asserts the outcome ledger conserves when a plan is armed.
fn measure(w: &Workload, faults: Option<FaultSpec>) -> f64 {
    let cfg = EngineConfig {
        duration: Nanos::from_secs(10),
        window: Nanos::from_secs(1),
        seed: 7,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.0,
        max_errors: 100,
        processes: 1,
        cores: 1,
        arrival: Arrival::Closed,
        obs: ObsConfig::default(),
        faults,
        retry: RetryPolicy::Bounded { retries: 3 },
    };
    let mut t = testbed::paper_ext2(Bytes::gib(2), 7);
    let rec = Engine::run(&mut t, w, &cfg).expect("engine run");
    match (&cfg.faults, &rec.ledger) {
        (Some(_), Some(l)) => {
            assert!(
                l.balanced(),
                "ledger must conserve (attempted = succeeded + retried_ok \
                 + gave_up + dropped): {}",
                l.render()
            );
            println!("    {}", l.render());
        }
        (None, None) => {}
        _ => panic!("a ledger exists exactly when a fault plan is armed"),
    }
    rec.ops_per_sec()
}

/// The content server: 128 KiB random reads over one hot 256 MiB file
/// that fits the 410 MiB paper cache, so after prewarm the device is
/// out of the picture entirely.
fn content_server() -> Workload {
    Workload {
        name: "contentserver".into(),
        filesets: vec![FileSet {
            dir: "/set0".into(),
            count: 1,
            size: Dist::Constant(Bytes::mib(256).as_u64() as f64),
            prealloc: true,
        }],
        ops: vec![(
            FlowOp::ReadRandom {
                set: 0,
                iosize: Bytes::kib(128),
            },
            1,
        )],
        op_overhead: Nanos::from_micros(99),
        zipf_theta: 0.0,
    }
}

fn main() {
    let plan = FaultSpec::parse("slow-disk:8x,eio:1e-4").expect("fault plan parses");
    let mail = personalities::varmail(50);
    let content = content_server();

    println!("fault plan: {}   retry: bounded:3\n", plan.label());
    let mut rows = Vec::new();
    for (name, w) in [("varmail", &mail), ("contentserver", &content)] {
        println!("{name}:");
        let healthy = measure(w, None);
        let degraded = measure(w, Some(plan));
        println!("    healthy {healthy:>8.0} ops/s   degraded {degraded:>8.0} ops/s\n");
        rows.push((name, healthy, degraded));
    }

    let (a, b) = (&rows[0], &rows[1]);
    let healthy_winner = if a.1 > b.1 { a.0 } else { b.0 };
    let degraded_winner = if a.2 > b.2 { a.0 } else { b.0 };
    println!("healthy winner:  {healthy_winner}");
    println!("degraded winner: {degraded_winner}");
    assert_ne!(
        healthy_winner, degraded_winner,
        "the ranking must invert between healthy and degraded cells"
    );
    println!("\nThe ranking inverted. Neither number is wrong; each is an");
    println!("answer about a different machine. Publish the fault plan");
    println!("alongside the figure, or the figure is not reproducible.");
}
